"""Parallel fitness evaluation: the hot path of every benchmark.

Population evaluation is embarrassingly parallel — each genome's rollouts
are independent once the episode seeds are fixed.  The paper's per-genome
derived seeds (see :class:`repro.envs.evaluate.FitnessEvaluator`) make
this exact: seeds are computed in the parent with the *same* formula the
serial evaluator uses, so ``workers=N`` produces bit-identical fitnesses
to ``workers=1`` and results stay reproducible across machine sizes.

Workers are plain ``multiprocessing`` pool processes; each builds its
environment once in the pool initializer and re-uses it across
generations, mirroring the serial evaluator's single-env loop.

``vectorizer="numpy"`` composes with workers: each worker compiles its
contiguous slice of the population into stacked dense plans
(:mod:`repro.neat.compiled`) and rolls the slice's episodes out in
lockstep, so large populations batch *within* processes while sharding
*across* them.  Seeds still come from the parent with the serial
formula, so all four paths (serial/pooled × scalar/numpy) agree.

``task_transport="shm"`` additionally moves the per-generation genome
payload out of the pool's task pipe: chunks are staged once in a
shared-memory segment and workers unpickle them in place (see
:data:`TASK_TRANSPORTS`).  Transport changes how bytes travel, never
what is computed — fitnesses stay bit-identical.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Callable, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..envs.evaluate import EvaluationTotals, FitnessEvaluator, run_episode
from ..envs.registry import make
from ..envs.seeding import episode_seed
from ..neat.compiled import BatchedEvaluator, evaluate_genomes_batched
from ..neat.config import NEATConfig
from ..neat.genome import Genome
from ..neat.network import FeedForwardNetwork
from .spec import VECTORIZERS

#: How tasks travel from the parent to pool workers.  ``pickle`` is the
#: classic ``pool.map`` argument path (each chunk pickled into the task
#: pipe); ``shm`` stages the pickled chunks in one
#: :class:`multiprocessing.shared_memory.SharedMemory` segment per
#: generation, so only tiny ``(name, offset, length)`` descriptors cross
#: the pipe and workers deserialize straight out of the mapping —
#: zero-copy transport for large populations.  The default comes from the
#: ``REPRO_TASK_TRANSPORT`` environment variable (``pickle`` if unset);
#: results are bit-identical either way.
TASK_TRANSPORTS = ("pickle", "shm")
TASK_TRANSPORT_ENV_VAR = "REPRO_TASK_TRANSPORT"


def _resolve_task_transport(task_transport: Optional[str]) -> str:
    if task_transport is None:
        task_transport = os.environ.get(TASK_TRANSPORT_ENV_VAR) or "pickle"
    if task_transport not in TASK_TRANSPORTS:
        raise ValueError(
            f"unknown task transport {task_transport!r}; "
            f"known: {TASK_TRANSPORTS}"
        )
    return task_transport


# Per-worker state, populated by the pool initializer: one env per
# process, plus the genome config (shipped once, not once per task).
_WORKER_ENV = None
_WORKER_ENV_ID = None
_WORKER_ENV_BATCH = None
_WORKER_MAX_STEPS = None
_WORKER_GENOME_CONFIG = None
_WORKER_SCENARIO = None


def _init_worker(
    env_id: str, max_steps: Optional[int], genome_config, scenario=None
) -> None:
    global _WORKER_ENV, _WORKER_ENV_ID, _WORKER_ENV_BATCH
    global _WORKER_MAX_STEPS, _WORKER_GENOME_CONFIG, _WORKER_SCENARIO
    if scenario is not None:
        from ..scenarios import build_env

        _WORKER_ENV = build_env(scenario)
    else:
        _WORKER_ENV = make(env_id)
    _WORKER_ENV_ID = env_id
    _WORKER_ENV_BATCH = None
    _WORKER_MAX_STEPS = max_steps
    _WORKER_GENOME_CONFIG = genome_config
    _WORKER_SCENARIO = scenario


def _evaluate_genome(task) -> Tuple[int, List[float], int, int]:
    """Roll one genome out over its pre-derived episode seeds.

    Returns ``(genome_key, rewards, env_steps, inference_macs)``; the
    mean/transform happens in the parent so non-picklable fitness
    transforms keep working.
    """
    genome, seeds = task
    network = FeedForwardNetwork.create(genome, _WORKER_GENOME_CONFIG)
    rewards: List[float] = []
    steps = 0
    macs = 0
    for seed_value in seeds:
        _WORKER_ENV.seed(seed_value)
        result = run_episode(network, _WORKER_ENV, _WORKER_MAX_STEPS)
        rewards.append(result.total_reward)
        steps += result.steps
        macs += result.inference_macs
    return genome.key, rewards, steps, macs


def _evaluate_chunk_vectorized(chunk) -> List[Tuple[int, List[float], int, int]]:
    """Batch-evaluate a contiguous population slice inside one worker."""
    global _WORKER_ENV_BATCH
    if _WORKER_ENV_BATCH is None:
        if _WORKER_SCENARIO is not None:
            from ..scenarios import build_batched_env

            _WORKER_ENV_BATCH = build_batched_env(_WORKER_SCENARIO)
        else:
            from ..envs.batched import make_batched

            _WORKER_ENV_BATCH = make_batched(_WORKER_ENV_ID)
    # Forked workers inherit the parent's installed tracer (the path,
    # not a shared handle), so chunk spans land in the same telemetry
    # file tagged with the worker's pid.
    with obs.span("parallel.chunk", genomes=len(chunk)):
        return evaluate_genomes_batched(
            chunk,
            _WORKER_GENOME_CONFIG,
            _WORKER_ENV_BATCH,
            max_steps=_WORKER_MAX_STEPS,
            scalar_env=_WORKER_ENV,
        )


def _attach_untracked(name: str):
    """Attach to an existing shared-memory segment without registering it
    with the resource tracker.

    The parent owns the segment's lifetime (it unlinks after the map);
    attach-side registration would make worker trackers warn about an
    already-unlinked "leak" — or, when the tracker is shared across the
    fork, double-unregister the parent's entry.  Python 3.13 exposes
    ``track=False`` for exactly this; earlier versions need the register
    call shimmed out for the duration of the attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *_args, **_kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _evaluate_chunk_shm(descriptor) -> List[Tuple[int, List[float], int, int]]:
    """Deserialize one chunk straight out of shared memory and run it.

    ``descriptor`` is ``(segment_name, offset, length, vectorized)``; the
    pickled chunk is read through a memoryview of the mapping (no copy
    into the task pipe, no intermediate bytes object).
    """
    name, offset, length, vectorized = descriptor
    segment = _attach_untracked(name)
    try:
        view = segment.buf[offset : offset + length]
        try:
            chunk = pickle.loads(view)
        finally:
            del view  # release the exported view so close() can unmap
    finally:
        segment.close()
    if vectorized:
        return _evaluate_chunk_vectorized(chunk)
    return [_evaluate_genome(task) for task in chunk]


class ParallelFitnessEvaluator:
    """Drop-in replacement for :class:`FitnessEvaluator` using a pool.

    Same constructor surface plus ``workers``; same callable protocol
    (``evaluator(genomes, config)``); same ``totals`` accounting.  Call
    :meth:`close` (or use as a context manager) to release the pool —
    the experiment runner does this automatically.
    """

    def __init__(
        self,
        env_id: str,
        episodes: int = 1,
        max_steps: Optional[int] = None,
        seed: Optional[int] = 0,
        fitness_transform: Optional[Callable[[float], float]] = None,
        workers: int = 2,
        vectorizer: str = "scalar",
        start_generation: int = 0,
        task_transport: Optional[str] = None,
        scenario=None,
    ) -> None:
        if workers < 2:
            raise ValueError("ParallelFitnessEvaluator needs workers >= 2; "
                             "use FitnessEvaluator for serial evaluation")
        if vectorizer not in VECTORIZERS:
            raise ValueError(
                f"unknown vectorizer {vectorizer!r}; known: {VECTORIZERS}"
            )
        self.task_transport = _resolve_task_transport(task_transport)
        self.env_id = env_id
        self.episodes = episodes
        self.max_steps = max_steps
        self.seed = seed
        self.fitness_transform = fitness_transform
        self.workers = workers
        self.vectorizer = vectorizer
        #: frozen dataclass — pickles into the pool initializer cleanly
        self.scenario = scenario
        self.totals = EvaluationTotals()
        # Episode seeds derive from the generation index, so a resumed
        # run must restart the counter where the checkpoint left off.
        self._generation = start_generation
        self._pool = None
        self._pool_genome_config = None

    def _ensure_pool(self, genome_config):
        # The genome config is baked into the workers at pool creation;
        # if a caller re-uses this evaluator with a different config
        # (rare), rebuild the pool rather than evaluate against stale
        # structural parameters.
        if self._pool is not None and genome_config != self._pool_genome_config:
            self.close()
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(
                    self.env_id, self.max_steps, genome_config, self.scenario
                ),
            )
            self._pool_genome_config = genome_config
        return self._pool

    def _episode_seeds(self, genome: Genome) -> List[int]:
        # The one canonical derivation — parity is load-bearing: serial
        # and parallel runs must see identical episode streams.
        return [
            episode_seed(self.seed, self._generation, genome.key, episode)
            for episode in range(self.episodes)
        ]

    def _chunks(self, tasks: List) -> List[List]:
        """Contiguous slices, one per worker — the numpy-vectorizer and
        shared-memory paths shard identically, so outcomes concatenate
        back in input order."""
        bounds = [
            (len(tasks) * w) // self.workers for w in range(self.workers + 1)
        ]
        return [tasks[lo:hi] for lo, hi in zip(bounds, bounds[1:]) if lo < hi]

    def _map_via_shared_memory(self, pool, tasks: List):
        """Ship task chunks through one shared-memory segment.

        The chunks are pickled once into a single mapping; workers get
        ``(name, offset, length, vectorized)`` descriptors and unpickle
        in place, so the per-generation genome payload never rides the
        pool's task pipe.  The segment lives only for the duration of
        the map (unlinked in the parent once results are back).
        """
        from multiprocessing import shared_memory

        chunks = self._chunks(tasks)
        with obs.span("parallel.shm_stage", chunks=len(chunks)) as sp:
            blobs = [
                pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
                for chunk in chunks
            ]
            total = sum(len(blob) for blob in blobs)
            sp.set(bytes=total)
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, total)
            )
        try:
            descriptors = []
            offset = 0
            vectorized = self.vectorizer == "numpy"
            for blob in blobs:
                segment.buf[offset : offset + len(blob)] = blob
                descriptors.append(
                    (segment.name, offset, len(blob), vectorized)
                )
                offset += len(blob)
            chunk_results = pool.map(_evaluate_chunk_shm, descriptors)
        finally:
            segment.close()
            segment.unlink()
        return [
            outcome for chunk_result in chunk_results for outcome in chunk_result
        ]

    def __call__(self, genomes: List[Genome], config: NEATConfig) -> None:
        pool = self._ensure_pool(config.genome)
        tasks = [
            (genome, self._episode_seeds(genome)) for genome in genomes
        ]
        with obs.span(
            "parallel.map",
            workers=self.workers,
            genomes=len(tasks),
            transport=self.task_transport,
            vectorizer=self.vectorizer,
        ):
            if self.task_transport == "shm":
                outcomes = self._map_via_shared_memory(pool, tasks)
            elif self.vectorizer == "numpy":
                # Contiguous slices, one per worker: each slice is
                # compiled, stacked and rolled out in lockstep inside
                # its process.
                outcomes = [
                    outcome
                    for chunk_result in pool.map(
                        _evaluate_chunk_vectorized, self._chunks(tasks)
                    )
                    for outcome in chunk_result
                ]
            else:
                outcomes = pool.map(_evaluate_genome, tasks)
        for genome, (key, rewards, steps, macs) in zip(genomes, outcomes):
            if key != genome.key:  # pool.map preserves order; belt and braces
                raise RuntimeError(
                    f"parallel evaluation order mismatch: {key} != {genome.key}"
                )
            fitness = sum(rewards) / len(rewards)
            if self.fitness_transform is not None:
                fitness = self.fitness_transform(fitness)
            genome.fitness = fitness
            self.totals.episodes += len(rewards)
            self.totals.steps += steps
            self.totals.macs += macs
        self._generation += 1

    def close(self) -> None:
        """Release the pool; idempotent (safe to call repeatedly, and
        after ``__del__`` already tore the pool down)."""
        pool, self._pool = self._pool, None
        self._pool_genome_config = None
        if pool is not None:
            pool.close()
            pool.join()

    def __enter__(self) -> "ParallelFitnessEvaluator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            # terminate() alone leaves zombie processes (and leaked
            # semaphores) until the parent exits; join() reaps them.
            pool, self._pool = getattr(self, "_pool", None), None
            if pool is not None:
                pool.terminate()
                pool.join()
        except Exception:
            pass


def build_evaluator(
    env_id: str,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    seed: Optional[int] = 0,
    fitness_transform: Optional[Callable[[float], float]] = None,
    workers: int = 1,
    vectorizer: str = "scalar",
    start_generation: int = 0,
    task_transport: Optional[str] = None,
    scenario=None,
) -> Union[FitnessEvaluator, ParallelFitnessEvaluator, BatchedEvaluator]:
    """The evaluator for a (workers, vectorizer) combination.

    ``workers=1`` stays in-process (scalar node-by-node walk, or the
    compiled numpy batch engine); ``workers>1`` shards the population
    over a pool, vectorizing within each worker when asked.  All four
    combinations produce identical fitnesses for a fixed seed.

    ``start_generation`` pre-advances the evaluator's generation counter
    so a run resumed from a checkpoint replays the exact episode-seed
    stream the uninterrupted run would have seen (every evaluator
    derives seeds through :func:`repro.envs.seeding.episode_seed`).

    ``task_transport`` selects how pooled workers receive their tasks
    (see :data:`TASK_TRANSPORTS`); it only applies to ``workers>1`` and
    defaults to the ``REPRO_TASK_TRANSPORT`` environment variable.
    """
    if vectorizer not in VECTORIZERS:
        raise ValueError(
            f"unknown vectorizer {vectorizer!r}; known: {VECTORIZERS}"
        )
    if workers <= 1:
        cls = BatchedEvaluator if vectorizer == "numpy" else FitnessEvaluator
        return cls(
            env_id,
            episodes=episodes,
            max_steps=max_steps,
            seed=seed,
            fitness_transform=fitness_transform,
            start_generation=start_generation,
            scenario=scenario,
        )
    return ParallelFitnessEvaluator(
        env_id,
        episodes=episodes,
        max_steps=max_steps,
        seed=seed,
        fitness_transform=fitness_transform,
        workers=workers,
        vectorizer=vectorizer,
        start_generation=start_generation,
        task_transport=task_transport,
        scenario=scenario,
    )
