"""Parallel fitness evaluation: the hot path of every benchmark.

Population evaluation is embarrassingly parallel — each genome's rollouts
are independent once the episode seeds are fixed.  The paper's per-genome
derived seeds (see :class:`repro.envs.evaluate.FitnessEvaluator`) make
this exact: seeds are computed in the parent with the *same* formula the
serial evaluator uses, so ``workers=N`` produces bit-identical fitnesses
to ``workers=1`` and results stay reproducible across machine sizes.

Workers are plain ``multiprocessing`` pool processes; each builds its
environment once in the pool initializer and re-uses it across
generations, mirroring the serial evaluator's single-env loop.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Tuple, Union

from ..envs.evaluate import EvaluationTotals, FitnessEvaluator, run_episode
from ..envs.registry import make
from ..envs.seeding import derive_seed
from ..neat.config import NEATConfig
from ..neat.genome import Genome
from ..neat.network import FeedForwardNetwork

# Per-worker state, populated by the pool initializer: one env per
# process, plus the genome config (shipped once, not once per task).
_WORKER_ENV = None
_WORKER_MAX_STEPS = None
_WORKER_GENOME_CONFIG = None


def _init_worker(env_id: str, max_steps: Optional[int], genome_config) -> None:
    global _WORKER_ENV, _WORKER_MAX_STEPS, _WORKER_GENOME_CONFIG
    _WORKER_ENV = make(env_id)
    _WORKER_MAX_STEPS = max_steps
    _WORKER_GENOME_CONFIG = genome_config


def _evaluate_genome(task) -> Tuple[int, List[float], int, int]:
    """Roll one genome out over its pre-derived episode seeds.

    Returns ``(genome_key, rewards, env_steps, inference_macs)``; the
    mean/transform happens in the parent so non-picklable fitness
    transforms keep working.
    """
    genome, seeds = task
    network = FeedForwardNetwork.create(genome, _WORKER_GENOME_CONFIG)
    rewards: List[float] = []
    steps = 0
    macs = 0
    for episode_seed in seeds:
        _WORKER_ENV.seed(episode_seed)
        result = run_episode(network, _WORKER_ENV, _WORKER_MAX_STEPS)
        rewards.append(result.total_reward)
        steps += result.steps
        macs += result.inference_macs
    return genome.key, rewards, steps, macs


class ParallelFitnessEvaluator:
    """Drop-in replacement for :class:`FitnessEvaluator` using a pool.

    Same constructor surface plus ``workers``; same callable protocol
    (``evaluator(genomes, config)``); same ``totals`` accounting.  Call
    :meth:`close` (or use as a context manager) to release the pool —
    the experiment runner does this automatically.
    """

    def __init__(
        self,
        env_id: str,
        episodes: int = 1,
        max_steps: Optional[int] = None,
        seed: Optional[int] = 0,
        fitness_transform: Optional[Callable[[float], float]] = None,
        workers: int = 2,
    ) -> None:
        if workers < 2:
            raise ValueError("ParallelFitnessEvaluator needs workers >= 2; "
                             "use FitnessEvaluator for serial evaluation")
        self.env_id = env_id
        self.episodes = episodes
        self.max_steps = max_steps
        self.seed = seed
        self.fitness_transform = fitness_transform
        self.workers = workers
        self.totals = EvaluationTotals()
        self._generation = 0
        self._pool = None
        self._pool_genome_config = None

    def _ensure_pool(self, genome_config):
        # The genome config is baked into the workers at pool creation;
        # if a caller re-uses this evaluator with a different config
        # (rare), rebuild the pool rather than evaluate against stale
        # structural parameters.
        if self._pool is not None and genome_config != self._pool_genome_config:
            self.close()
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.env_id, self.max_steps, genome_config),
            )
            self._pool_genome_config = genome_config
        return self._pool

    def _episode_seeds(self, genome: Genome) -> List[int]:
        # Exactly FitnessEvaluator's derivation — parity is load-bearing:
        # serial and parallel runs must see identical episode streams.
        return [
            derive_seed(
                self.seed,
                (self._generation * 1_000_003 + genome.key) * 17 + episode,
            )
            for episode in range(self.episodes)
        ]

    def __call__(self, genomes: List[Genome], config: NEATConfig) -> None:
        pool = self._ensure_pool(config.genome)
        tasks = [
            (genome, self._episode_seeds(genome)) for genome in genomes
        ]
        for genome, (key, rewards, steps, macs) in zip(
            genomes, pool.map(_evaluate_genome, tasks)
        ):
            if key != genome.key:  # pool.map preserves order; belt and braces
                raise RuntimeError(
                    f"parallel evaluation order mismatch: {key} != {genome.key}"
                )
            fitness = sum(rewards) / len(rewards)
            if self.fitness_transform is not None:
                fitness = self.fitness_transform(fitness)
            genome.fitness = fitness
            self.totals.episodes += len(rewards)
            self.totals.steps += steps
            self.totals.macs += macs
        self._generation += 1

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelFitnessEvaluator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            if self._pool is not None:
                self._pool.terminate()
        except Exception:
            pass


def build_evaluator(
    env_id: str,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    seed: Optional[int] = 0,
    fitness_transform: Optional[Callable[[float], float]] = None,
    workers: int = 1,
) -> Union[FitnessEvaluator, ParallelFitnessEvaluator]:
    """Serial evaluator for ``workers=1``, pool-backed otherwise."""
    if workers <= 1:
        return FitnessEvaluator(
            env_id,
            episodes=episodes,
            max_steps=max_steps,
            seed=seed,
            fitness_transform=fitness_transform,
        )
    return ParallelFitnessEvaluator(
        env_id,
        episodes=episodes,
        max_steps=max_steps,
        seed=seed,
        fitness_transform=fitness_transform,
        workers=workers,
    )
