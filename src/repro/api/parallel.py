"""Parallel fitness evaluation: the hot path of every benchmark.

Population evaluation is embarrassingly parallel — each genome's rollouts
are independent once the episode seeds are fixed.  The paper's per-genome
derived seeds (see :class:`repro.envs.evaluate.FitnessEvaluator`) make
this exact: seeds are computed in the parent with the *same* formula the
serial evaluator uses, so ``workers=N`` produces bit-identical fitnesses
to ``workers=1`` and results stay reproducible across machine sizes.

Workers are plain ``multiprocessing`` pool processes; each builds its
environment once in the pool initializer and re-uses it across
generations, mirroring the serial evaluator's single-env loop.

``vectorizer="numpy"`` composes with workers: each worker compiles its
contiguous slice of the population into stacked dense plans
(:mod:`repro.neat.compiled`) and rolls the slice's episodes out in
lockstep, so large populations batch *within* processes while sharding
*across* them.  Seeds still come from the parent with the serial
formula, so all four paths (serial/pooled × scalar/numpy) agree.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Tuple, Union

from ..envs.evaluate import EvaluationTotals, FitnessEvaluator, run_episode
from ..envs.registry import make
from ..envs.seeding import episode_seed
from ..neat.compiled import BatchedEvaluator, evaluate_genomes_batched
from ..neat.config import NEATConfig
from ..neat.genome import Genome
from ..neat.network import FeedForwardNetwork
from .spec import VECTORIZERS

# Per-worker state, populated by the pool initializer: one env per
# process, plus the genome config (shipped once, not once per task).
_WORKER_ENV = None
_WORKER_ENV_ID = None
_WORKER_ENV_BATCH = None
_WORKER_MAX_STEPS = None
_WORKER_GENOME_CONFIG = None


def _init_worker(env_id: str, max_steps: Optional[int], genome_config) -> None:
    global _WORKER_ENV, _WORKER_ENV_ID, _WORKER_ENV_BATCH
    global _WORKER_MAX_STEPS, _WORKER_GENOME_CONFIG
    _WORKER_ENV = make(env_id)
    _WORKER_ENV_ID = env_id
    _WORKER_ENV_BATCH = None
    _WORKER_MAX_STEPS = max_steps
    _WORKER_GENOME_CONFIG = genome_config


def _evaluate_genome(task) -> Tuple[int, List[float], int, int]:
    """Roll one genome out over its pre-derived episode seeds.

    Returns ``(genome_key, rewards, env_steps, inference_macs)``; the
    mean/transform happens in the parent so non-picklable fitness
    transforms keep working.
    """
    genome, seeds = task
    network = FeedForwardNetwork.create(genome, _WORKER_GENOME_CONFIG)
    rewards: List[float] = []
    steps = 0
    macs = 0
    for seed_value in seeds:
        _WORKER_ENV.seed(seed_value)
        result = run_episode(network, _WORKER_ENV, _WORKER_MAX_STEPS)
        rewards.append(result.total_reward)
        steps += result.steps
        macs += result.inference_macs
    return genome.key, rewards, steps, macs


def _evaluate_chunk_vectorized(chunk) -> List[Tuple[int, List[float], int, int]]:
    """Batch-evaluate a contiguous population slice inside one worker."""
    global _WORKER_ENV_BATCH
    if _WORKER_ENV_BATCH is None:
        from ..envs.batched import make_batched

        _WORKER_ENV_BATCH = make_batched(_WORKER_ENV_ID)
    return evaluate_genomes_batched(
        chunk,
        _WORKER_GENOME_CONFIG,
        _WORKER_ENV_BATCH,
        max_steps=_WORKER_MAX_STEPS,
        scalar_env=_WORKER_ENV,
    )


class ParallelFitnessEvaluator:
    """Drop-in replacement for :class:`FitnessEvaluator` using a pool.

    Same constructor surface plus ``workers``; same callable protocol
    (``evaluator(genomes, config)``); same ``totals`` accounting.  Call
    :meth:`close` (or use as a context manager) to release the pool —
    the experiment runner does this automatically.
    """

    def __init__(
        self,
        env_id: str,
        episodes: int = 1,
        max_steps: Optional[int] = None,
        seed: Optional[int] = 0,
        fitness_transform: Optional[Callable[[float], float]] = None,
        workers: int = 2,
        vectorizer: str = "scalar",
        start_generation: int = 0,
    ) -> None:
        if workers < 2:
            raise ValueError("ParallelFitnessEvaluator needs workers >= 2; "
                             "use FitnessEvaluator for serial evaluation")
        if vectorizer not in VECTORIZERS:
            raise ValueError(
                f"unknown vectorizer {vectorizer!r}; known: {VECTORIZERS}"
            )
        self.env_id = env_id
        self.episodes = episodes
        self.max_steps = max_steps
        self.seed = seed
        self.fitness_transform = fitness_transform
        self.workers = workers
        self.vectorizer = vectorizer
        self.totals = EvaluationTotals()
        # Episode seeds derive from the generation index, so a resumed
        # run must restart the counter where the checkpoint left off.
        self._generation = start_generation
        self._pool = None
        self._pool_genome_config = None

    def _ensure_pool(self, genome_config):
        # The genome config is baked into the workers at pool creation;
        # if a caller re-uses this evaluator with a different config
        # (rare), rebuild the pool rather than evaluate against stale
        # structural parameters.
        if self._pool is not None and genome_config != self._pool_genome_config:
            self.close()
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.env_id, self.max_steps, genome_config),
            )
            self._pool_genome_config = genome_config
        return self._pool

    def _episode_seeds(self, genome: Genome) -> List[int]:
        # The one canonical derivation — parity is load-bearing: serial
        # and parallel runs must see identical episode streams.
        return [
            episode_seed(self.seed, self._generation, genome.key, episode)
            for episode in range(self.episodes)
        ]

    def __call__(self, genomes: List[Genome], config: NEATConfig) -> None:
        pool = self._ensure_pool(config.genome)
        tasks = [
            (genome, self._episode_seeds(genome)) for genome in genomes
        ]
        if self.vectorizer == "numpy":
            # Contiguous slices, one per worker: each slice is compiled,
            # stacked and rolled out in lockstep inside its process.
            bounds = [
                (len(tasks) * w) // self.workers for w in range(self.workers + 1)
            ]
            chunks = [
                tasks[lo:hi] for lo, hi in zip(bounds, bounds[1:]) if lo < hi
            ]
            outcomes = [
                outcome
                for chunk_result in pool.map(_evaluate_chunk_vectorized, chunks)
                for outcome in chunk_result
            ]
        else:
            outcomes = pool.map(_evaluate_genome, tasks)
        for genome, (key, rewards, steps, macs) in zip(genomes, outcomes):
            if key != genome.key:  # pool.map preserves order; belt and braces
                raise RuntimeError(
                    f"parallel evaluation order mismatch: {key} != {genome.key}"
                )
            fitness = sum(rewards) / len(rewards)
            if self.fitness_transform is not None:
                fitness = self.fitness_transform(fitness)
            genome.fitness = fitness
            self.totals.episodes += len(rewards)
            self.totals.steps += steps
            self.totals.macs += macs
        self._generation += 1

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelFitnessEvaluator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            if self._pool is not None:
                self._pool.terminate()
        except Exception:
            pass


def build_evaluator(
    env_id: str,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    seed: Optional[int] = 0,
    fitness_transform: Optional[Callable[[float], float]] = None,
    workers: int = 1,
    vectorizer: str = "scalar",
    start_generation: int = 0,
) -> Union[FitnessEvaluator, ParallelFitnessEvaluator, BatchedEvaluator]:
    """The evaluator for a (workers, vectorizer) combination.

    ``workers=1`` stays in-process (scalar node-by-node walk, or the
    compiled numpy batch engine); ``workers>1`` shards the population
    over a pool, vectorizing within each worker when asked.  All four
    combinations produce identical fitnesses for a fixed seed.

    ``start_generation`` pre-advances the evaluator's generation counter
    so a run resumed from a checkpoint replays the exact episode-seed
    stream the uninterrupted run would have seen (every evaluator
    derives seeds through :func:`repro.envs.seeding.episode_seed`).
    """
    if vectorizer not in VECTORIZERS:
        raise ValueError(
            f"unknown vectorizer {vectorizer!r}; known: {VECTORIZERS}"
        )
    if workers <= 1:
        cls = BatchedEvaluator if vectorizer == "numpy" else FitnessEvaluator
        return cls(
            env_id,
            episodes=episodes,
            max_steps=max_steps,
            seed=seed,
            fitness_transform=fitness_transform,
            start_generation=start_generation,
        )
    return ParallelFitnessEvaluator(
        env_id,
        episodes=episodes,
        max_steps=max_steps,
        seed=seed,
        fitness_transform=fitness_transform,
        workers=workers,
        vectorizer=vectorizer,
        start_generation=start_generation,
    )
