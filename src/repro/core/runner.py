"""High-level closed-loop runners (deprecated shims).

These entry points predate the unified experiment API and are kept as
thin, behaviour-identical shims over :class:`repro.api.Experiment`:

:func:`evolve_software` — ``Experiment`` with ``backend="software"``.
:func:`evolve_on_hardware` — ``Experiment`` with ``backend="soc"`` (the
GeneSys path: NEAT selection on the System CPU, reproduction on the EvE
PE model, inference on the ADAM systolic model).

New code should build an :class:`repro.api.ExperimentSpec` instead —
specs are JSON-serialisable, backend-agnostic and support parallel
fitness evaluation (``workers=N``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional

from ..envs.registry import make
from ..neat.config import NEATConfig
from ..neat.genome import Genome
from ..neat.population import Population
from .config import GeneSysConfig
from .soc import GenerationReport, GeneSysSoC


@dataclass
class SoftwareRunResult:
    best_genome: Genome
    population: Population
    generations: int
    converged: bool


@dataclass
class HardwareRunResult:
    best_genome: Genome
    soc: GeneSysSoC
    reports: List[GenerationReport]
    generations: int
    converged: bool

    @property
    def total_energy_j(self) -> float:
        return sum(r.energy.total_energy_j for r in self.reports)

    @property
    def total_cycles(self) -> int:
        return sum(r.inference_cycles + r.evolution_cycles for r in self.reports)


def config_for_env(
    env_id: str,
    pop_size: int = 150,
    fitness_threshold: Optional[float] = None,
) -> NEATConfig:
    """NEAT config sized to an environment (Section III-B's recipe)."""
    env = make(env_id)
    threshold = fitness_threshold
    if threshold is None:
        threshold = getattr(env, "solve_threshold", None)
    return NEATConfig.for_env(
        env.num_observations,
        max(2, env.num_actions),
        pop_size=pop_size,
        fitness_threshold=threshold,
    )


def _build_spec(
    env_id: str,
    backend: str,
    max_generations: int,
    pop_size: int,
    episodes: int,
    max_steps: Optional[int],
    seed: int,
    fitness_threshold: Optional[float],
):
    from ..api import ExperimentSpec

    return ExperimentSpec(
        env_id=env_id,
        backend=backend,
        max_generations=max_generations,
        pop_size=pop_size,
        episodes=episodes,
        max_steps=max_steps,
        seed=seed,
        fitness_threshold=fitness_threshold,
    )


def evolve_software(
    env_id: str,
    max_generations: int = 50,
    pop_size: int = 150,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    seed: int = 0,
    fitness_threshold: Optional[float] = None,
) -> SoftwareRunResult:
    """Pure-software NEAT run (the CPU/GPU baseline algorithm).

    .. deprecated:: 1.1
        Use ``Experiment(ExperimentSpec(env_id, backend="software"))``.
    """
    warnings.warn(
        "evolve_software is deprecated; use repro.api.Experiment with "
        'backend="software"',
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import Experiment

    spec = _build_spec(
        env_id, "software", max_generations, pop_size, episodes, max_steps,
        seed, fitness_threshold,
    )
    result = Experiment(spec).run()
    return SoftwareRunResult(
        best_genome=result.champion,
        population=result.population,
        generations=result.generations,
        converged=result.converged,
    )


def evolve_on_hardware(
    env_id: str,
    max_generations: int = 50,
    pop_size: int = 150,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    seed: int = 0,
    fitness_threshold: Optional[float] = None,
    soc_config: Optional[GeneSysConfig] = None,
) -> HardwareRunResult:
    """Closed-loop evolution through the EvE/ADAM hardware models.

    A caller-provided ``soc_config`` is no longer mutated in place; the
    spec's NEAT sizing and seed are applied to a copy.

    .. deprecated:: 1.1
        Use ``Experiment(ExperimentSpec(env_id, backend="soc"))``.
    """
    warnings.warn(
        "evolve_on_hardware is deprecated; use repro.api.Experiment with "
        'backend="soc"',
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import Experiment

    spec = _build_spec(
        env_id, "soc", max_generations, pop_size, episodes, max_steps,
        seed, fitness_threshold,
    )
    result = Experiment(spec, soc_config=soc_config).run()
    return HardwareRunResult(
        best_genome=result.champion,
        soc=result.soc,
        reports=result.reports,
        generations=result.generations,
        converged=result.converged,
    )
