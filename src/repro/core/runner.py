"""High-level closed-loop runners (deprecated shims).

These entry points predate the unified experiment API and are kept as
thin, behaviour-identical shims over :class:`repro.api.Experiment`:

:func:`evolve_software` — ``Experiment`` with ``backend="software"``.
:func:`evolve_on_hardware` — ``Experiment`` with ``backend="soc"`` (the
GeneSys path: NEAT selection on the System CPU, reproduction on the EvE
PE model, inference on the ADAM systolic model).

New code should build an :class:`repro.api.ExperimentSpec` and run it
with :func:`repro.api.run_experiment` instead — specs are
JSON-serialisable, backend-agnostic, and support parallel fitness
evaluation (``workers=N``), vectorized inference
(``vectorizer="numpy"``) and durable, resumable run directories
(``run_dir=...``; see :mod:`repro.runs`).  The spec-driven equivalents::

    # evolve_software("CartPole-v0", max_generations=50, seed=0)
    run_experiment(ExperimentSpec("CartPole-v0", max_generations=50, seed=0))

    # evolve_on_hardware("CartPole-v0", max_generations=50)
    run_experiment(ExperimentSpec("CartPole-v0", backend="soc",
                                  max_generations=50))

CLI twins: ``repro run CartPole-v0`` and ``repro run --backend soc``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional

from ..envs.registry import make
from ..neat.config import NEATConfig
from ..neat.genome import Genome
from ..neat.population import Population
from .config import GeneSysConfig
from .soc import GenerationReport, GeneSysSoC


@dataclass
class SoftwareRunResult:
    best_genome: Genome
    population: Population
    generations: int
    converged: bool


@dataclass
class HardwareRunResult:
    best_genome: Genome
    soc: GeneSysSoC
    reports: List[GenerationReport]
    generations: int
    converged: bool

    @property
    def total_energy_j(self) -> float:
        return sum(r.energy.total_energy_j for r in self.reports)

    @property
    def total_cycles(self) -> int:
        return sum(r.inference_cycles + r.evolution_cycles for r in self.reports)


def config_for_env(
    env_id: str,
    pop_size: int = 150,
    fitness_threshold: Optional[float] = None,
) -> NEATConfig:
    """NEAT config sized to an environment (Section III-B's recipe)."""
    env = make(env_id)
    threshold = fitness_threshold
    if threshold is None:
        threshold = getattr(env, "solve_threshold", None)
    return NEATConfig.for_env(
        env.num_observations,
        max(2, env.num_actions),
        pop_size=pop_size,
        fitness_threshold=threshold,
    )


def _build_spec(
    env_id: str,
    backend: str,
    max_generations: int,
    pop_size: int,
    episodes: int,
    max_steps: Optional[int],
    seed: int,
    fitness_threshold: Optional[float],
):
    from ..api import ExperimentSpec

    return ExperimentSpec(
        env_id=env_id,
        backend=backend,
        max_generations=max_generations,
        pop_size=pop_size,
        episodes=episodes,
        max_steps=max_steps,
        seed=seed,
        fitness_threshold=fitness_threshold,
    )


def evolve_software(
    env_id: str,
    max_generations: int = 50,
    pop_size: int = 150,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    seed: int = 0,
    fitness_threshold: Optional[float] = None,
) -> SoftwareRunResult:
    """Pure-software NEAT run (the CPU/GPU baseline algorithm).

    .. deprecated:: 1.1
        Use ``run_experiment(ExperimentSpec(env_id))`` — the spec-driven
        equivalent additionally supports ``workers``, ``vectorizer`` and
        resumable run directories (CLI: ``repro run <env>``).
    """
    warnings.warn(
        "evolve_software is deprecated; use repro.api.run_experiment("
        "ExperimentSpec(env_id)) — the spec-driven path also offers "
        "workers=N, vectorizer='numpy' and run_dir=... (repro.runs)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import Experiment

    spec = _build_spec(
        env_id, "software", max_generations, pop_size, episodes, max_steps,
        seed, fitness_threshold,
    )
    result = Experiment(spec).run()
    return SoftwareRunResult(
        best_genome=result.champion,
        population=result.population,
        generations=result.generations,
        converged=result.converged,
    )


def evolve_on_hardware(
    env_id: str,
    max_generations: int = 50,
    pop_size: int = 150,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    seed: int = 0,
    fitness_threshold: Optional[float] = None,
    soc_config: Optional[GeneSysConfig] = None,
) -> HardwareRunResult:
    """Closed-loop evolution through the EvE/ADAM hardware models.

    A caller-provided ``soc_config`` is no longer mutated in place; the
    spec's NEAT sizing and seed are applied to a copy.

    .. deprecated:: 1.1
        Use ``run_experiment(ExperimentSpec(env_id, backend="soc"))``
        (CLI: ``repro run <env> --backend soc``); pass rich hardware
        design points via ``backend_options`` or ``soc_config``.
    """
    warnings.warn(
        "evolve_on_hardware is deprecated; use repro.api.run_experiment("
        "ExperimentSpec(env_id, backend='soc')) — hardware knobs go in "
        "backend_options (eve_pes, noc, scheduler, adam_shape)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import Experiment

    spec = _build_spec(
        env_id, "soc", max_generations, pop_size, episodes, max_steps,
        seed, fitness_threshold,
    )
    result = Experiment(spec, soc_config=soc_config).run()
    return HardwareRunResult(
        best_genome=result.champion,
        soc=result.soc,
        reports=result.reports,
        generations=result.generations,
        converged=result.converged,
    )
