"""High-level closed-loop runners.

:func:`evolve_software` — the paper's baseline path (neat-python style):
software NEAT, software inference.

:func:`evolve_on_hardware` — the GeneSys path: the same NEAT selection on
the System CPU, but reproduction executed by the EvE PE model on packed
64-bit genes and inference executed by the ADAM systolic model.  This is
the "first system ... to perform evolutionary learning and inference on
the same chip" loop, in simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..envs.evaluate import FitnessEvaluator
from ..envs.registry import make
from ..neat.config import NEATConfig
from ..neat.genome import Genome
from ..neat.population import Population
from .config import GeneSysConfig
from .soc import GenerationReport, GeneSysSoC


@dataclass
class SoftwareRunResult:
    best_genome: Genome
    population: Population
    generations: int
    converged: bool


@dataclass
class HardwareRunResult:
    best_genome: Genome
    soc: GeneSysSoC
    reports: List[GenerationReport]
    generations: int
    converged: bool

    @property
    def total_energy_j(self) -> float:
        return sum(r.energy.total_energy_j for r in self.reports)

    @property
    def total_cycles(self) -> int:
        return sum(r.inference_cycles + r.evolution_cycles for r in self.reports)


def config_for_env(
    env_id: str,
    pop_size: int = 150,
    fitness_threshold: Optional[float] = None,
) -> NEATConfig:
    """NEAT config sized to an environment (Section III-B's recipe)."""
    env = make(env_id)
    threshold = fitness_threshold
    if threshold is None:
        threshold = getattr(env, "solve_threshold", None)
    return NEATConfig.for_env(
        env.num_observations,
        max(2, env.num_actions),
        pop_size=pop_size,
        fitness_threshold=threshold,
    )


def evolve_software(
    env_id: str,
    max_generations: int = 50,
    pop_size: int = 150,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    seed: int = 0,
    fitness_threshold: Optional[float] = None,
) -> SoftwareRunResult:
    """Pure-software NEAT run (the CPU/GPU baseline algorithm)."""
    config = config_for_env(env_id, pop_size, fitness_threshold)
    population = Population(config, seed=seed)
    evaluator = FitnessEvaluator(
        env_id, episodes=episodes, max_steps=max_steps, seed=seed
    )
    best = population.run(evaluator, max_generations=max_generations)
    return SoftwareRunResult(
        best_genome=best,
        population=population,
        generations=population.generation,
        converged=population.converged,
    )


def evolve_on_hardware(
    env_id: str,
    max_generations: int = 50,
    pop_size: int = 150,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    seed: int = 0,
    fitness_threshold: Optional[float] = None,
    soc_config: Optional[GeneSysConfig] = None,
) -> HardwareRunResult:
    """Closed-loop evolution through the EvE/ADAM hardware models."""
    neat_config = config_for_env(env_id, pop_size, fitness_threshold)
    if soc_config is None:
        soc_config = GeneSysConfig.paper_design_point(neat=neat_config)
    else:
        soc_config.neat = neat_config
    soc_config.seed = seed
    soc = GeneSysSoC(soc_config, env_id, episodes=episodes, max_steps=max_steps)
    best = soc.run(max_generations=max_generations)
    threshold = neat_config.fitness_threshold
    converged = (
        threshold is not None
        and best.fitness is not None
        and best.fitness >= threshold
    )
    return HardwareRunResult(
        best_genome=best,
        soc=soc,
        reports=soc.reports,
        generations=soc.generation,
        converged=converged,
    )
