"""GeneSys core: the SoC model and closed-loop runners."""

from .config import GeneSysConfig
from .runner import (
    HardwareRunResult,
    SoftwareRunResult,
    config_for_env,
    evolve_on_hardware,
    evolve_software,
)
from .soc import GenerationReport, GeneSysSoC
from .trace import (
    GenerationWorkload,
    TraceLine,
    TraceRecorder,
    WorkloadTrace,
)

__all__ = [
    "GeneSysConfig",
    "GeneSysSoC",
    "GenerationReport",
    "GenerationWorkload",
    "HardwareRunResult",
    "SoftwareRunResult",
    "TraceLine",
    "TraceRecorder",
    "WorkloadTrace",
    "config_for_env",
    "evolve_on_hardware",
    "evolve_software",
]
