"""The GeneSys SoC: EvE + ADAM + Genome Buffer + System CPU.

Implements the walkthrough of Section IV-B.  One call to
:meth:`GeneSysSoC.run_generation` performs:

1.  map genomes from the Genome Buffer onto ADAM,
2-5. roll out each genome against its environment instance, one packed
    matrix-vector wave at a time, until the episode completes,
6.  translate cumulative reward into fitness and augment it to the genome
    in SRAM,
7.  run the Gene Selector (software thread) to pick parents,
8-9. stream parent genes through the EvE PEs (crossover + mutations),
10. merge child genes and write the next generation back to the buffer.

All hardware counters (cycles, SRAM accesses, NoC reads, MACs) feed the
:class:`repro.hw.energy.EnergyLedger` so per-generation runtime and energy
match what the platform comparison (Fig. 9/10) reports for GENESYS.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .. import obs as telemetry
from ..envs.base import Environment
from ..envs.evaluate import action_from_outputs, run_episodes_batched
from ..envs.registry import make
from ..envs.seeding import derive_seed
from ..hw.adam import (
    ADAM,
    InferenceStats,
    StackedAdamEnvelope,
    build_inference_plan,
)
from ..hw.energy import EnergyLedger, cycles_to_seconds
from ..hw.eve import EvolutionEngine, EvolutionResult
from ..hw.gene_encoding import decode_genome, encode_genome
from ..hw.selector import GeneSelector
from ..hw.sram import GenomeBuffer
from ..neat.genome import Genome
from ..neat.reproduction import Reproduction
from .config import GeneSysConfig

EnvFactory = Callable[[], Environment]


@dataclass
class GenerationReport:
    """Everything measured while producing one generation."""

    generation: int
    best_fitness: float
    mean_fitness: float
    num_species: int
    num_genes: int
    footprint_bytes: int
    inference: InferenceStats
    evolution: EvolutionResult
    env_steps: int
    inference_cycles: int
    evolution_cycles: int
    energy: EnergyLedger
    fittest_parent_reuse: int

    @property
    def inference_seconds(self) -> float:
        return cycles_to_seconds(self.inference_cycles)

    @property
    def evolution_seconds(self) -> float:
        return cycles_to_seconds(self.evolution_cycles)


class GeneSysSoC:
    """Functional + cycle/energy model of the full chip."""

    def __init__(
        self,
        config: GeneSysConfig,
        env_id: str,
        episodes: int = 1,
        max_steps: Optional[int] = None,
        vectorize: bool = True,
    ) -> None:
        self.config = config
        self.env_id = env_id
        self.episodes = episodes
        self.max_steps = max_steps
        #: Population-batched evaluation: functional rollouts run as
        #: lockstep numpy lanes (:mod:`repro.neat.compiled`) and the ADAM
        #: counters are charged through one
        #: :class:`repro.hw.adam.StackedAdamEnvelope` — bit-identical to
        #: the serial per-genome walk, just vectorised.
        self.vectorize = vectorize
        self._env_batch = None
        self.buffer = GenomeBuffer(config.sram)
        self.adam = ADAM(config.adam)
        eve_config = config.eve
        eve_config.pe = config.pe_config_from_neat()
        self.eve = EvolutionEngine(eve_config)
        self.selector = GeneSelector(config.neat, seed=config.seed)
        self.rng = random.Random(config.seed)
        self.population: Dict[int, Genome] = {}
        self.generation = 0
        self.best_genome: Optional[Genome] = None
        self.reports: List[GenerationReport] = []

    # ------------------------------------------------------------------

    def initialise_population(self) -> None:
        """CPU boot: create generation 0 and load it into the buffer."""
        self.population = self.selector.reproduction.create_initial_population(self.rng)
        self.buffer.clear()
        for key, genome in self.population.items():
            self.buffer.write_genome(key, encode_genome(genome, self.config.neat.genome))

    # -- steps 1-6: inference + fitness -----------------------------------

    def evaluate_population(self) -> int:
        """Run every genome against the environment; returns env steps."""
        if self.vectorize:
            return self._evaluate_population_batched()
        return self._evaluate_population_serial()

    def _episode_seed(self, key: int, episode: int) -> int:
        # The one canonical SoC derivation — serial and batched paths
        # must see identical episode streams.
        return derive_seed(
            self.config.seed,
            (self.generation * 1_000_003 + key) * 17 + episode,
        )

    def _evaluate_population_serial(self) -> int:
        with telemetry.span(
            "soc.evaluate_serial",
            generation=self.generation,
            genomes=len(self.population),
        ):
            return self._evaluate_population_serial_inner()

    def _evaluate_population_serial_inner(self) -> int:
        env = make(self.env_id)
        genome_cfg = self.config.neat.genome
        total_steps = 0
        for key in sorted(self.population):
            genome = self.population[key]
            # Step 1: genomes are read from the buffer and mapped on ADAM.
            stream = self.buffer.read_genome(key)
            resident = decode_genome(stream, key, genome_cfg)
            plan = build_inference_plan(resident, genome_cfg)
            rewards = []
            for episode in range(self.episodes):
                env.seed(self._episode_seed(key, episode))
                rewards.append(self._run_episode(plan, env))
                total_steps += self._episode_steps
            fitness = sum(rewards) / len(rewards)
            # Step 6: fitness augmented to the genome in SRAM.
            self.buffer.set_fitness(key, fitness)
            genome.fitness = fitness
        return total_steps

    def _evaluate_population_batched(self) -> int:
        """Steps 1-6 for the whole population at once.

        Functional rollouts go through the compiled lockstep lanes
        (:mod:`repro.neat.compiled`) — every (genome, episode) pair is a
        lane of one batched environment — while the hardware counters are
        charged exactly through a :class:`StackedAdamEnvelope` (per-pass
        costs are static per plan, so cost = per-pass x steps in pure
        integer arithmetic).  Genomes the dense compiler cannot express
        fall back to the serial ADAM walk on the same seeds.
        """
        from ..neat.compiled import CompileError, StackedPlans, compile_network

        genome_cfg = self.config.neat.genome
        keys = sorted(self.population)
        plans = {}
        compiled = {}
        with telemetry.span(
            "soc.compile", generation=self.generation, genomes=len(keys)
        ) as sp:
            for key in keys:
                # Step 1: genomes are read from the buffer and mapped on
                # ADAM.
                stream = self.buffer.read_genome(key)
                resident = decode_genome(stream, key, genome_cfg)
                plans[key] = build_inference_plan(resident, genome_cfg)
                try:
                    compiled[key] = compile_network(resident, genome_cfg)
                except CompileError:
                    pass
            sp.set(compiled=len(compiled))

        rewards_by_key: Dict[int, List[float]] = {}
        steps_by_key: Dict[int, List[int]] = {}
        batched_keys = [k for k in keys if k in compiled]
        if batched_keys:
            if self._env_batch is None:
                from ..envs.batched import make_batched

                self._env_batch = make_batched(self.env_id)
            stacked = StackedPlans([compiled[k] for k in batched_keys])
            lane_plans: List[int] = []
            lane_seeds: List[int] = []
            for slot, key in enumerate(batched_keys):
                for episode in range(self.episodes):
                    lane_plans.append(slot)
                    lane_seeds.append(self._episode_seed(key, episode))
            with telemetry.span(
                "soc.rollout",
                genomes=len(batched_keys),
                lanes=len(lane_seeds),
            ):
                episodes = run_episodes_batched(
                    stacked.lane_runner(lane_plans),
                    self._env_batch,
                    lane_seeds,
                    max_steps=self.max_steps,
                )
            cursor = 0
            for key in batched_keys:
                lane_results = episodes[cursor : cursor + self.episodes]
                cursor += self.episodes
                rewards_by_key[key] = [r.total_reward for r in lane_results]
                steps_by_key[key] = [r.steps for r in lane_results]
            # Steps 2-5 cost accounting: every env step is one forward
            # pass of that genome's plan.
            with telemetry.span(
                "soc.envelope_charge", genomes=len(batched_keys)
            ):
                envelope = StackedAdamEnvelope(
                    [plans[k] for k in batched_keys], self.adam.config
                )
                envelope.charge(
                    self.adam.stats,
                    [sum(steps_by_key[k]) for k in batched_keys],
                )

        fallback_keys = [k for k in keys if k not in compiled]
        if fallback_keys:
            env = make(self.env_id)
            with telemetry.span("soc.fallback", genomes=len(fallback_keys)):
                for key in fallback_keys:
                    rewards: List[float] = []
                    steps: List[int] = []
                    for episode in range(self.episodes):
                        env.seed(self._episode_seed(key, episode))
                        rewards.append(self._run_episode(plans[key], env))
                        steps.append(self._episode_steps)
                    rewards_by_key[key] = rewards
                    steps_by_key[key] = steps

        total_steps = 0
        for key in keys:
            rewards = rewards_by_key[key]
            fitness = sum(rewards) / len(rewards)
            # Step 6: fitness augmented to the genome in SRAM.
            self.buffer.set_fitness(key, fitness)
            self.population[key].fitness = fitness
            total_steps += sum(steps_by_key[key])
        return total_steps

    def _run_episode(self, plan, env: Environment) -> float:
        """Steps 2-5 for one episode; tracks steps in _episode_steps."""
        obs = env.reset()
        total_reward = 0.0
        steps = 0
        limit = self.max_steps if self.max_steps is not None else env.max_episode_steps
        for _ in range(limit):
            outputs = self.adam.run(plan, obs.ravel().tolist())
            action = action_from_outputs(outputs, env)
            obs, reward, done, _info = env.step(action)
            total_reward += reward
            steps += 1
            if done:
                break
        self._episode_steps = steps
        return total_reward

    # -- steps 7-10: selection + evolution ------------------------------------

    def evolve_population(self) -> Optional[EvolutionResult]:
        """Select parents on the CPU, reproduce on EvE, refresh the buffer."""
        outcome = self.selector.select(self.population, self.buffer, self.generation)
        self._last_selection = outcome
        if outcome.plan is None:
            # Complete extinction: the CPU re-seeds a fresh population.
            self.initialise_population()
            return None
        result = self.eve.reproduce_generation(
            self.buffer, outcome.plan.events, outcome.plan.elite_keys
        )
        genome_cfg = self.config.neat.genome
        new_population: Dict[int, Genome] = {}
        for child_key, stream in result.children.items():
            new_population[child_key] = decode_genome(stream, child_key, genome_cfg)
        # Retire the previous generation from the buffer ("overwriting the
        # genomes from the previous generation", step 10).
        for old_key in list(self.buffer.resident_genomes()):
            if old_key not in new_population:
                self.buffer.delete_genome(old_key)
        self.population = new_population
        self._last_plan = outcome.plan
        return result

    # -- one full generation ----------------------------------------------------

    def run_generation(self) -> GenerationReport:
        if not self.population:
            self.initialise_population()

        sram_before = self.buffer.stats.total_accesses
        env_steps = self.evaluate_population()
        inference = self.adam.reset_stats()

        fitnesses = {k: g.fitness for k, g in self.population.items()}
        best_key = max(fitnesses, key=fitnesses.get)
        best_fitness = fitnesses[best_key]
        mean_fitness = sum(fitnesses.values()) / len(fitnesses)
        if (
            self.best_genome is None
            or (self.best_genome.fitness or float("-inf")) < best_fitness
        ):
            self.best_genome = self.population[best_key].copy()
        num_genes = sum(g.num_genes for g in self.population.values())

        with telemetry.span("soc.evolve", generation=self.generation):
            evolution = self.evolve_population()
        if evolution is None:
            evolution = EvolutionResult()
        plan = getattr(self, "_last_plan", None)
        reuse = plan.fittest_parent_reuse(fitnesses) if plan is not None else 0

        ledger = EnergyLedger(
            eve_pe_cycles=evolution.pe_stats.busy_cycles,
            adam_macs=inference.macs,
            sram_reads=self.buffer.stats.reads,
            sram_writes=self.buffer.stats.writes,
            dram_accesses=self.buffer.stats.dram_reads + self.buffer.stats.dram_writes,
            noc_gene_hops=evolution.noc_stats.genes_delivered,
            m0_cycles=self._last_selection.cpu_cycles + inference.vectorize_cycles,
        )
        self.buffer.reset_stats()

        report = GenerationReport(
            generation=self.generation,
            best_fitness=best_fitness,
            mean_fitness=mean_fitness,
            num_species=self._last_selection.num_species,
            num_genes=num_genes,
            footprint_bytes=self.buffer.bytes_used,
            inference=inference,
            evolution=evolution,
            env_steps=env_steps,
            inference_cycles=inference.total_cycles,
            evolution_cycles=evolution.cycles,
            energy=ledger,
            fittest_parent_reuse=reuse,
        )
        self.reports.append(report)
        self.generation += 1
        return report

    def run(
        self,
        max_generations: int = 50,
        fitness_threshold: Optional[float] = None,
    ) -> Genome:
        """Closed-loop evolution until target fitness (the paper's stop
        criterion) or the generation budget."""
        threshold = (
            fitness_threshold
            if fitness_threshold is not None
            else self.config.neat.fitness_threshold
        )
        for _ in range(max_generations):
            report = self.run_generation()
            if threshold is not None and report.best_fitness >= threshold:
                break
        if self.best_genome is None:
            raise RuntimeError("no generations were evaluated")
        return self.best_genome
