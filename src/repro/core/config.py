"""Top-level GeneSys SoC configuration (Fig. 8a parameter table)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.adam import ADAMConfig
from ..hw.energy import FREQUENCY_HZ
from ..hw.eve import EvEConfig
from ..hw.pe import PEConfig
from ..hw.sram import SRAMConfig
from ..neat.config import NEATConfig


@dataclass
class GeneSysConfig:
    """The full SoC: EvE + ADAM + Genome Buffer + System CPU settings."""

    neat: NEATConfig = field(default_factory=NEATConfig)
    eve: EvEConfig = field(default_factory=EvEConfig)
    adam: ADAMConfig = field(default_factory=ADAMConfig)
    sram: SRAMConfig = field(default_factory=SRAMConfig)
    frequency_hz: float = FREQUENCY_HZ
    seed: int = 0

    @classmethod
    def paper_design_point(cls, neat: Optional[NEATConfig] = None) -> "GeneSysConfig":
        """The implemented 15 nm design point: 256 EvE PEs, 32x32 ADAM,
        1.5 MB / 48-bank SRAM, 200 MHz (Section V)."""
        return cls(
            neat=neat or NEATConfig(),
            eve=EvEConfig(num_pes=256, noc="multicast", scheduler="greedy"),
            adam=ADAMConfig(rows=32, cols=32),
            sram=SRAMConfig(num_banks=48, bank_depth=4096),
        )

    def pe_config_from_neat(self) -> PEConfig:
        """Map NEAT mutation probabilities onto the PE's 8-bit registers.

        The CPU performs "the configuration steps of the NEAT algorithm
        (setting the various probabilities ...)" (Section IV-A).  Per-gene
        probabilities are derived from the per-genome structural rates by
        spreading them over the average stream length, so expected
        structural mutation counts match the software algorithm's.
        """
        genome_cfg = self.neat.genome
        # Initial stream length: outputs + dense input-output mesh.
        approx_genes = genome_cfg.num_outputs + (
            genome_cfg.num_inputs * genome_cfg.num_outputs
        )
        per_gene = 1.0 / max(1, approx_genes)
        return PEConfig(
            crossover_bias=genome_cfg.crossover_bias,
            perturb_prob=min(1.0, genome_cfg.weight_mutate_rate),
            node_delete_prob=min(1.0, genome_cfg.node_delete_prob * per_gene * 4),
            conn_delete_prob=min(1.0, genome_cfg.conn_delete_prob * per_gene * 4),
            node_add_prob=min(1.0, genome_cfg.node_add_prob * per_gene * 4),
            conn_add_prob=min(1.0, genome_cfg.conn_add_prob * per_gene * 4),
            max_node_deletions=genome_cfg.max_node_deletions_per_child,
        )
