"""Reproduction-op traces and per-generation workload records.

Section VI-A methodology: "we ... modify the code to optimize for runtime
and energy efficiency ... and to generate a trace of reproduction
operations for the various workloads ... Each line on the trace captures
the generation, the child gene and genome id, the type of operation -
mutation or crossover, and the parameters changed ... These traces serve
as proxy for our workloads when we evaluate EVE and ADAM implementations."

:class:`GenerationWorkload` is the aggregate form every platform model
consumes; :class:`TraceRecorder` instruments a software NEAT run to
produce both the per-op trace lines and the workload aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..envs.registry import make
from ..neat.config import NEATConfig
from ..neat.genome import MutationCounts
from ..neat.network import FeedForwardNetwork, feed_forward_layers
from ..neat.population import Population
from ..neat.statistics import GENE_BYTES


@dataclass
class TraceLine:
    """One reproduction op, in the paper's trace format."""

    generation: int
    genome_id: int
    op: str  # "crossover" | "perturb" | "add_node" | "del_node" | "add_conn" | "del_conn"
    count: int

    def format(self) -> str:
        return f"{self.generation},{self.genome_id},{self.op},{self.count}"


@dataclass
class GenerationWorkload:
    """Everything a platform model needs about one generation."""

    generation: int
    population: int
    total_nodes: int
    total_connections: int
    ops: MutationCounts
    env_steps: int
    inference_macs: int
    mean_network_depth: float
    fittest_parent_reuse: int

    @property
    def total_genes(self) -> int:
        return self.total_nodes + self.total_connections

    @property
    def footprint_bytes(self) -> int:
        """Fig. 5(b): bytes to hold all genes of the generation."""
        return self.total_genes * GENE_BYTES

    @property
    def evolution_ops(self) -> int:
        return self.ops.total

    @property
    def mean_genome_genes(self) -> float:
        return self.total_genes / self.population if self.population else 0.0


@dataclass
class WorkloadTrace:
    """A full run's workloads plus op trace lines."""

    env_id: str
    workloads: List[GenerationWorkload] = field(default_factory=list)
    lines: List[TraceLine] = field(default_factory=list)

    def iter_lines(self) -> Iterator[str]:
        for line in self.lines:
            yield line.format()

    @property
    def generations(self) -> int:
        return len(self.workloads)

    def save(self, path) -> None:
        """Write the op trace in the paper's line format, with a header.

        "Each line on the trace captures the generation, the child ...
        genome id, the type of operation ... These traces serve as proxy
        for our workloads" (Section VI-A).
        """
        from pathlib import Path

        out = [f"# workload trace: {self.env_id}",
               "# generation,genome_id,op,count"]
        out.extend(self.iter_lines())
        Path(path).write_text("\n".join(out) + "\n")

    @classmethod
    def load(cls, path) -> "WorkloadTrace":
        """Read back a trace file (op lines only; workload aggregates are
        not persisted — re-record for those)."""
        from pathlib import Path

        trace = cls(env_id="unknown")
        for raw in Path(path).read_text().splitlines():
            if raw.startswith("# workload trace:"):
                trace.env_id = raw.split(":", 1)[1].strip()
                continue
            if not raw or raw.startswith("#"):
                continue
            generation, genome_id, op, count = raw.split(",")
            trace.lines.append(
                TraceLine(
                    generation=int(generation),
                    genome_id=int(genome_id),
                    op=op,
                    count=int(count),
                )
            )
        return trace

    def mean_workload(self) -> GenerationWorkload:
        """Average generation (used for the per-generation bars of Fig. 9)."""
        if not self.workloads:
            raise ValueError("empty trace")
        n = len(self.workloads)
        ops = MutationCounts()
        for w in self.workloads:
            ops.merge(w.ops)
        ops = MutationCounts(
            crossovers=ops.crossovers // n,
            perturbations=ops.perturbations // n,
            node_additions=ops.node_additions // n,
            node_deletions=ops.node_deletions // n,
            conn_additions=ops.conn_additions // n,
            conn_deletions=ops.conn_deletions // n,
        )
        return GenerationWorkload(
            generation=-1,
            population=round(sum(w.population for w in self.workloads) / n),
            total_nodes=round(sum(w.total_nodes for w in self.workloads) / n),
            total_connections=round(
                sum(w.total_connections for w in self.workloads) / n
            ),
            ops=ops,
            env_steps=round(sum(w.env_steps for w in self.workloads) / n),
            inference_macs=round(sum(w.inference_macs for w in self.workloads) / n),
            mean_network_depth=sum(w.mean_network_depth for w in self.workloads) / n,
            fittest_parent_reuse=round(
                sum(w.fittest_parent_reuse for w in self.workloads) / n
            ),
        )


def _mean_depth(population, genome_config) -> float:
    """Average levelised depth across genomes (waves per forward pass)."""
    depths = []
    for genome in population.values():
        enabled = [k for k, c in genome.connections.items() if c.enabled]
        try:
            layers = feed_forward_layers(
                genome_config.input_keys, genome_config.output_keys, enabled
            )
            depths.append(len(layers))
        except ValueError:
            depths.append(1)
    return sum(depths) / len(depths) if depths else 0.0


class TraceRecorder:
    """Runs software NEAT on an environment, recording the workload trace.

    This mirrors the paper's modified neat-python: the run is the real
    algorithm; the recorder only observes.
    """

    def __init__(
        self,
        env_id: str,
        pop_size: int = 150,
        episodes: int = 1,
        max_steps: Optional[int] = None,
        seed: int = 0,
        workers: int = 1,
        vectorizer: str = "scalar",
        fitness_threshold: Optional[float] = None,
    ) -> None:
        self.env_id = env_id
        env = make(env_id)
        self.config = NEATConfig.for_env(
            env.num_observations,
            max(2, env.num_actions),
            pop_size=pop_size,
            fitness_threshold=fitness_threshold,
        )
        self.episodes = episodes
        self.max_steps = max_steps
        self.seed = seed
        self.workers = workers
        self.vectorizer = vectorizer

    @classmethod
    def from_spec(cls, spec) -> "TraceRecorder":
        """Build a recorder from an :class:`repro.api.ExperimentSpec`."""
        return cls(
            spec.env_id,
            pop_size=spec.pop_size,
            episodes=spec.episodes,
            max_steps=spec.max_steps,
            seed=spec.seed,
            workers=spec.workers,
            vectorizer=spec.vectorizer,
            fitness_threshold=spec.fitness_threshold,
        )

    def record(self, generations: int) -> WorkloadTrace:
        from ..api.parallel import build_evaluator

        population = Population(self.config, seed=self.seed)
        evaluator = build_evaluator(
            self.env_id,
            episodes=self.episodes,
            max_steps=self.max_steps,
            seed=self.seed,
            workers=self.workers,
            vectorizer=self.vectorizer,
        )
        trace = WorkloadTrace(env_id=self.env_id)
        threshold = self.config.fitness_threshold
        prev_steps = 0
        prev_macs = 0
        try:
            for _ in range(generations):
                pop_snapshot = dict(population.population)
                population.run_generation(evaluator)
                stats = population.statistics.generations[-1]
                env_steps = evaluator.totals.steps - prev_steps
                macs = evaluator.totals.macs - prev_macs
                prev_steps = evaluator.totals.steps
                prev_macs = evaluator.totals.macs
                # Reuse the batched evaluator's levelisation by-product
                # when it ran; identical to re-deriving per genome.
                depth = getattr(evaluator, "last_mean_depth", None)
                if depth is None:
                    depth = _mean_depth(pop_snapshot, self.config.genome)
                trace.workloads.append(
                    GenerationWorkload(
                        generation=stats.generation,
                        population=stats.population_size,
                        total_nodes=stats.num_nodes,
                        total_connections=stats.num_connections,
                        ops=stats.ops,
                        env_steps=env_steps,
                        inference_macs=macs,
                        mean_network_depth=depth,
                        fittest_parent_reuse=stats.fittest_parent_reuse,
                    )
                )
                plan = population.last_plan
                if plan is not None:
                    for event in plan.events:
                        counts = event.counts
                        for op, count in (
                            ("crossover", counts.crossovers),
                            ("perturb", counts.perturbations),
                            ("add_node", counts.node_additions),
                            ("del_node", counts.node_deletions),
                            ("add_conn", counts.conn_additions),
                            ("del_conn", counts.conn_deletions),
                        ):
                            if count:
                                trace.lines.append(
                                    TraceLine(
                                        generation=plan.generation,
                                        genome_id=event.child_key,
                                        op=op,
                                        count=count,
                                    )
                                )
                # Same stop criterion as Population.run and the api
                # backends: a spec-driven characterise run must cover the
                # same generations as the equivalent `run` invocation.
                if threshold is not None and population.fitness_summary() >= threshold:
                    break
        finally:
            close = getattr(evaluator, "close", None)
            if close is not None:
                close()
        return trace
