"""GeneSys reproduction: NEAT neuro-evolution with hardware acceleration.

Reproduction of Samajdar et al., "GeneSys: Enabling Continuous Learning
through Neural Network Evolution in Hardware" (MICRO 2018).

Public API tour:

* :mod:`repro.neat` — from-scratch NEAT (genes, genomes, speciation,
  reproduction, feed-forward phenotypes).
* :mod:`repro.envs` — gym-equivalent environments (classic control,
  simplified Box2D, synthetic Atari-RAM kernels).
* :mod:`repro.hw` — cycle/energy models of the EvE evolution engine, the
  ADAM systolic inference engine, the banked genome SRAM and the NoC.
* :mod:`repro.api` — the unified experiment API: :class:`ExperimentSpec`
  (JSON-round-trippable), pluggable backends (``software``, ``soc``,
  ``analytical:<platform>``) and parallel fitness evaluation.
* :mod:`repro.dse` — declarative design-space exploration: JSON sweep
  specs over experiment and hardware axes, incremental content-hash
  caching, Pareto analysis (``python -m repro dse``).
* :mod:`repro.runs` — durable run artifacts: per-generation metrics
  logs, full-state checkpoints, bit-identical resume
  (``repro run --resume``) and artifact-only reporting
  (``repro report``).
* :mod:`repro.core` — the GeneSys SoC walkthrough loop and legacy
  closed-loop runner shims.
* :mod:`repro.platforms` — analytical CPU/GPU/GENESYS platform models for
  the paper's evaluation sweeps.
* :mod:`repro.baselines` — DQN with exact op accounting (Table II).
* :mod:`repro.analysis` — characterisation harnesses and ASCII reporting.

Quickstart::

    from repro.api import Experiment, ExperimentSpec
    spec = ExperimentSpec("CartPole-v0", backend="soc", max_generations=20)
    result = Experiment(spec).run()
    print(result.best_fitness, result.total_energy_j)
"""

__version__ = "1.2.0"

from . import analysis, api, baselines, core, dse, envs, hw, neat, platforms, runs

__all__ = [
    "__version__",
    "analysis",
    "api",
    "baselines",
    "core",
    "dse",
    "envs",
    "hw",
    "neat",
    "platforms",
    "runs",
]
