"""Scenario specs: the environment as a declarative, content-addressed axis.

The paper's Section II motivation is *continuous* learning — agents that
keep evolving as the world changes — but a bare env id can only name a
fixed world.  A :class:`ScenarioSpec` makes the environment variant a
first-class spec value, exactly like :class:`repro.platforms.PlatformSpec`
made the hardware substrate one:

* a base registered environment id,
* typed physics/reward parameter overrides (pole length, gravity, force
  magnitude, reward shaping — whatever the env declares in
  ``TUNABLE_PARAMS``),
* a stack of adversarial perturbations (seeded observation noise, action
  dropout, per-episode parameter jitter), and
* an optional :class:`~repro.scenarios.curriculum.CurriculumSchedule`
  that walks difficulty stages at generation boundaries.

Specs are frozen, JSON-round-trippable, and hash to a ``content_key()``
that feeds the DSE point cache, so sweeping ``scenario.*`` axes memoises
like every other axis.  An open registry (``register_scenario``) ships a
handful of built-in variants and accepts user ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union


class ScenarioSpecError(ValueError):
    """An invalid scenario spec (bad kind, unknown parameter, bad value)."""


class UnknownScenarioError(KeyError):
    """A scenario name absent from the registry."""


def _require_fraction(name: str, value: Any) -> float:
    value = _require_number(name, value)
    if not 0.0 <= value <= 1.0:
        raise ScenarioSpecError(f"{name} must be in [0, 1], got {value!r}")
    return value


def _require_non_negative(name: str, value: Any) -> float:
    value = _require_number(name, value)
    if value < 0:
        raise ScenarioSpecError(f"{name} must be >= 0, got {value!r}")
    return value


def _require_number(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioSpecError(f"{name} must be a number, got {value!r}")
    return float(value)


# -- perturbations ----------------------------------------------------------


@dataclass(frozen=True)
class ObservationNoiseParams:
    """Gaussian noise added to every observation component."""

    std: float = 0.05

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "std", _require_non_negative("observation_noise.std", self.std)
        )


@dataclass(frozen=True)
class ActionDropoutParams:
    """With probability ``prob``, the agent's action is replaced by a
    uniformly random one before the env sees it (actuator fault model)."""

    prob: float = 0.1

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "prob", _require_fraction("action_dropout.prob", self.prob)
        )


@dataclass(frozen=True)
class ParameterJitterParams:
    """Per-episode multiplicative jitter on tunable physics parameters.

    At every ``reset()`` each named parameter (all tunables when ``params``
    is empty) is scaled by ``1 + U(-scale, +scale)`` drawn from the
    wrapper's own deterministic stream.
    """

    scale: float = 0.05
    params: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "scale", _require_non_negative("parameter_jitter.scale", self.scale)
        )
        if isinstance(self.params, str):
            raise ScenarioSpecError(
                "parameter_jitter.params must be a list of parameter names"
            )
        object.__setattr__(self, "params", tuple(str(p) for p in self.params))


#: kind -> typed params dataclass; the adversarial wrapper catalogue.
PERTURBATION_KINDS = {
    "observation_noise": ObservationNoiseParams,
    "action_dropout": ActionDropoutParams,
    "parameter_jitter": ParameterJitterParams,
}


def _coerce_perturbation_params(kind: str, params: Any):
    cls = PERTURBATION_KINDS.get(kind)
    if cls is None:
        raise ScenarioSpecError(
            f"unknown perturbation kind {kind!r}; "
            f"known: {sorted(PERTURBATION_KINDS)}"
        )
    if isinstance(params, cls):
        return params
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ScenarioSpecError(
            f"perturbation params must be a mapping, got {params!r}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ScenarioSpecError(
            f"unknown {kind} parameter(s) {unknown}; known: {sorted(known)}"
        )
    return cls(**params)


@dataclass(frozen=True)
class PerturbationSpec:
    """One adversarial wrapper: a kind plus its typed parameters."""

    kind: str
    params: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", _coerce_perturbation_params(self.kind, self.params)
        )

    def to_dict(self) -> Dict[str, Any]:
        data = {"kind": self.kind, "params": dataclasses.asdict(self.params)}
        if "params" in data["params"]:  # tuple -> list for JSON
            data["params"]["params"] = list(data["params"]["params"])
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerturbationSpec":
        if not isinstance(data, dict):
            raise ScenarioSpecError(f"perturbation must be a mapping, got {data!r}")
        unknown = sorted(set(data) - {"kind", "params"})
        if unknown:
            raise ScenarioSpecError(f"unknown perturbation field(s): {unknown}")
        if "kind" not in data:
            raise ScenarioSpecError("perturbation is missing 'kind'")
        return cls(kind=data["kind"], params=data.get("params"))


def _coerce_perturbations(value: Any) -> Tuple[PerturbationSpec, ...]:
    if value is None:
        return ()
    if isinstance(value, (str, bytes, dict)):
        raise ScenarioSpecError(
            f"perturbations must be a list, got {value!r}"
        )
    out = []
    for item in value:
        if isinstance(item, PerturbationSpec):
            out.append(item)
        elif isinstance(item, dict):
            out.append(PerturbationSpec.from_dict(item))
        else:
            raise ScenarioSpecError(f"invalid perturbation entry: {item!r}")
    return tuple(out)


# -- the scenario spec ------------------------------------------------------


def _validate_env_params(env_id: str, params: Any, where: str) -> Dict[str, float]:
    """Check ``params`` against the env's declared tunables."""
    from ..envs import make

    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ScenarioSpecError(f"{where} must be a mapping, got {params!r}")
    try:
        template = make(env_id)
    except KeyError as exc:
        raise ScenarioSpecError(str(exc.args[0]) if exc.args else str(exc)) from exc
    tunable = template.tunable_params()
    unknown = sorted(set(params) - set(tunable))
    if unknown:
        raise ScenarioSpecError(
            f"{template.name} has no tunable parameter(s) {unknown}; "
            f"tunable: {sorted(tunable)}"
        )
    out = {}
    for key in params:
        out[key] = _require_number(f"{where}.{key}", params[key])
    return out


@dataclass(frozen=True)
class ScenarioSpec:
    """A frozen, JSON-round-trippable environment variant.

    ``params`` override the base env's ``TUNABLE_PARAMS``;
    ``perturbations`` wrap it (outermost last); ``curriculum`` (optional)
    schedules stage overrides at generation boundaries.
    """

    env_id: str
    name: Optional[str] = None
    params: Dict[str, float] = field(default_factory=dict)
    perturbations: Tuple[PerturbationSpec, ...] = ()
    curriculum: Optional[Any] = None  # CurriculumSchedule

    def __post_init__(self) -> None:
        from .curriculum import CurriculumSchedule

        if not isinstance(self.env_id, str) or not self.env_id:
            raise ScenarioSpecError("env_id must be a non-empty string")
        if self.name is not None and (
            not isinstance(self.name, str) or not self.name
        ):
            raise ScenarioSpecError("name must be a non-empty string or None")
        object.__setattr__(
            self,
            "params",
            _validate_env_params(self.env_id, self.params, "params"),
        )
        object.__setattr__(
            self, "perturbations", _coerce_perturbations(self.perturbations)
        )
        curriculum = self.curriculum
        if curriculum is not None:
            if isinstance(curriculum, dict):
                curriculum = CurriculumSchedule.from_dict(curriculum)
            if not isinstance(curriculum, CurriculumSchedule):
                raise ScenarioSpecError(
                    f"curriculum must be a CurriculumSchedule or mapping, "
                    f"got {curriculum!r}"
                )
            object.__setattr__(self, "curriculum", curriculum)
            for i, stage in enumerate(curriculum.stages):
                _validate_env_params(
                    self.env_id, stage.params, f"curriculum.stages[{i}].params"
                )

    # -- derived variants ---------------------------------------------------

    def replace(self, **changes: Any) -> "ScenarioSpec":
        return dataclasses.replace(self, **changes)

    def stage_count(self) -> int:
        return len(self.curriculum.stages) if self.curriculum else 1

    def stage_scenario(self, stage: int) -> "ScenarioSpec":
        """The curriculum-free scenario active at ``stage``.

        Stage params merge over the base params; a stage's perturbation
        list (when given) replaces the base one.
        """
        if self.curriculum is None:
            if stage != 0:
                raise ScenarioSpecError(
                    f"scenario has no curriculum; stage {stage} does not exist"
                )
            return self
        stages = self.curriculum.stages
        if not 0 <= stage < len(stages):
            raise ScenarioSpecError(
                f"stage {stage} out of range; curriculum has {len(stages)} stages"
            )
        st = stages[stage]
        return self.replace(
            params={**self.params, **st.params},
            perturbations=(
                st.perturbations
                if st.perturbations is not None
                else self.perturbations
            ),
            curriculum=None,
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"env_id": self.env_id}
        if self.name is not None:
            data["name"] = self.name
        if self.params:
            data["params"] = dict(self.params)
        if self.perturbations:
            data["perturbations"] = [p.to_dict() for p in self.perturbations]
        if self.curriculum is not None:
            data["curriculum"] = self.curriculum.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise ScenarioSpecError(f"scenario must be a mapping, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioSpecError(f"unknown scenario field(s): {unknown}")
        if "env_id" not in data:
            raise ScenarioSpecError("scenario is missing 'env_id'")
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioSpecError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_key(self) -> str:
        """Stable content hash; feeds the DSE point cache."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()


def as_scenario_spec(value: Any) -> ScenarioSpec:
    """Coerce a ScenarioSpec, mapping, or registered name."""
    if isinstance(value, ScenarioSpec):
        return value
    if isinstance(value, dict):
        return ScenarioSpec.from_dict(value)
    if isinstance(value, str):
        return get_scenario(value)
    raise ScenarioSpecError(
        f"cannot interpret {value!r} as a scenario spec"
    )


# -- registry ---------------------------------------------------------------

_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(name: str, scenario: Union[ScenarioSpec, Dict[str, Any]]) -> None:
    """Register a scenario under ``name`` (stored with ``name`` set)."""
    if not isinstance(name, str) or not name:
        raise ScenarioSpecError("scenario name must be a non-empty string")
    if isinstance(scenario, dict):
        scenario = ScenarioSpec.from_dict(scenario)
    if not isinstance(scenario, ScenarioSpec):
        raise ScenarioSpecError(f"cannot register {scenario!r} as a scenario")
    _SCENARIOS[name] = scenario.replace(name=name)


def unregister_scenario(name: str) -> None:
    if name not in _SCENARIOS:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        )
    del _SCENARIOS[name]


def get_scenario(name: str) -> ScenarioSpec:
    if name not in _SCENARIOS:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        )
    return _SCENARIOS[name]


def scenario_names() -> list:
    return sorted(_SCENARIOS)


def registered_scenarios() -> Dict[str, ScenarioSpec]:
    return dict(_SCENARIOS)
