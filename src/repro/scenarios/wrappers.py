"""Adversarial perturbation wrappers over any registered environment.

Each wrapper owns a ``random.Random`` stream *separate* from the inner
environment's: seeding a wrapper with episode seed ``s`` derives the
wrapper stream as ``derive_seed(s, salt)`` (splitmix64, the same
primitive every other seed in the system flows through) while forwarding
the raw ``s`` inward.  Consequences:

* the inner env's trajectory noise is decoupled from the perturbation
  noise (toggling a wrapper never perturbs the base env's reset state);
* determinism is per-episode: the same ``episode_seed`` replays the same
  perturbations, so serial / worker-pool / lockstep-batched evaluation
  stay bit-identical (the lockstep fallback drives these same objects).

Wrappers compose; each perturbation in a scenario gets a distinct salt
from its kind and position in the stack, so stacking two wrappers of the
same kind still yields independent streams.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..envs.base import Environment, StepResult
from ..envs.seeding import derive_seed, make_rng

#: per-kind base salts for the wrapper rng streams (arbitrary, frozen:
#: changing one changes every perturbed trajectory).
KIND_SALTS = {
    "observation_noise": 101,
    "action_dropout": 202,
    "parameter_jitter": 303,
}


def wrapper_salt(kind: str, position: int) -> int:
    """The rng-stream salt for the ``position``-th perturbation."""
    return KIND_SALTS[kind] + 7919 * position


class PerturbationWrapper(Environment):
    """Base: delegate the env protocol to ``inner``, own a derived rng.

    The inner environment keeps enforcing action validation and the
    TimeLimit, so the wrapper overrides ``reset``/``step``/``seed``
    wholesale instead of the ``_reset``/``_step`` hooks.
    """

    kind = "perturbation"

    def __init__(self, inner: Environment, salt: int) -> None:
        self.inner = inner
        self._salt = salt
        self.rng = make_rng(None)
        self.observation_space = inner.observation_space
        self.action_space = inner.action_space
        self.max_episode_steps = inner.max_episode_steps

    def seed(self, seed: Optional[int]) -> None:
        self.rng = make_rng(derive_seed(seed, self._salt))
        self.inner.seed(seed)

    def reset(self) -> np.ndarray:
        return self._wrap_reset()

    def step(self, action) -> StepResult:
        return self._wrap_step(action)

    def configure(self, **params: float) -> None:
        self.inner.configure(**params)

    def tunable_params(self):
        return self.inner.tunable_params()

    # -- subclass hooks ----------------------------------------------------

    def _wrap_reset(self) -> np.ndarray:
        return self.inner.reset()

    def _wrap_step(self, action) -> StepResult:
        return self.inner.step(action)

    # -- metadata ----------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{type(self).__name__}({self.inner.name})"

    @property
    def params(self):
        return self.inner.params

    @params.setter
    def params(self, value):  # Environment.__init__ is bypassed
        raise AttributeError("set params on the inner environment")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


class ObservationNoiseWrapper(PerturbationWrapper):
    """Additive Gaussian sensor noise on every observation component."""

    kind = "observation_noise"

    def __init__(self, inner: Environment, salt: int, std: float = 0.05) -> None:
        super().__init__(inner, salt)
        self.std = std

    def _noisy(self, obs: np.ndarray) -> np.ndarray:
        if self.std == 0.0:
            return obs
        noise = np.array(
            [self.rng.gauss(0.0, self.std) for _ in range(obs.size)]
        ).reshape(obs.shape)
        return obs + noise

    def _wrap_reset(self) -> np.ndarray:
        return self._noisy(self.inner.reset())

    def _wrap_step(self, action) -> StepResult:
        obs, reward, done, info = self.inner.step(action)
        return self._noisy(obs), reward, done, info


class ActionDropoutWrapper(PerturbationWrapper):
    """Actuator faults: with probability ``prob`` the chosen action is
    replaced by a uniformly random one before the env executes it."""

    kind = "action_dropout"

    def __init__(self, inner: Environment, salt: int, prob: float = 0.1) -> None:
        super().__init__(inner, salt)
        self.prob = prob

    def _wrap_step(self, action) -> StepResult:
        if self.prob > 0.0 and self.rng.random() < self.prob:
            action = self.inner.action_space.sample(self.rng)
        return self.inner.step(action)


class ParameterJitterWrapper(PerturbationWrapper):
    """Non-stationary physics: at every reset each targeted tunable is
    scaled by ``1 + U(-scale, +scale)`` around its configured value."""

    kind = "parameter_jitter"

    def __init__(
        self,
        inner: Environment,
        salt: int,
        scale: float = 0.05,
        params: Tuple[str, ...] = (),
    ) -> None:
        super().__init__(inner, salt)
        self.scale = scale
        base = inner.params
        names = params or tuple(sorted(base))
        unknown = sorted(set(names) - set(base))
        if unknown:
            raise ValueError(
                f"{inner.name} has no tunable parameter(s) {unknown}; "
                f"tunable: {sorted(base)}"
            )
        #: the pre-jitter values; jitter is always relative to these.
        self._base = {name: base[name] for name in names}

    def _wrap_reset(self) -> np.ndarray:
        if self.scale > 0.0:
            jittered = {
                name: value * (1.0 + self.rng.uniform(-self.scale, self.scale))
                for name, value in sorted(self._base.items())
            }
            self.inner.configure(**jittered)
        return self.inner.reset()


#: kind -> wrapper class, aligned with spec.PERTURBATION_KINDS.
WRAPPER_CLASSES = {
    "observation_noise": ObservationNoiseWrapper,
    "action_dropout": ActionDropoutWrapper,
    "parameter_jitter": ParameterJitterWrapper,
}


def apply_perturbation(inner: Environment, spec, position: int) -> Environment:
    """Wrap ``inner`` with the perturbation described by ``spec``."""
    import dataclasses

    cls = WRAPPER_CLASSES[spec.kind]
    salt = wrapper_salt(spec.kind, position)
    return cls(inner, salt, **dataclasses.asdict(spec.params))
