"""Continuous-learning reporting: forgetting/recovery across task switches.

The task-switch bench (Section II motivation: agents that keep learning
as the world changes) records per-generation ``scenario_stage``,
``scenario_forgetting`` and ``scenario_recovery`` into ``metrics.jsonl``;
this module turns those rows into the per-switch summary table and the
CSV artifact the CI scenarios-smoke job uploads.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from .curriculum import switch_report

CSV_COLUMNS = (
    "generation",
    "from_stage",
    "to_stage",
    "max_forgetting",
    "recovery_generations",
)


def continual_report(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-switch forgetting/recovery rows (see ``switch_report``)."""
    return switch_report(rows)


def export_continual_csv(
    rows: Iterable[Dict[str, Any]], path: Union[str, Path]
) -> List[Dict[str, Any]]:
    """Write the per-switch summary to ``path``; returns the rows."""
    report = continual_report(rows)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        for row in report:
            writer.writerow({key: row.get(key) for key in CSV_COLUMNS})
    return report
