"""Building live environments from scenario specs.

``build_env`` resolves the base env through the registry, applies the
parameter overrides, then stacks the perturbation wrappers; the result
speaks the plain :class:`~repro.envs.Environment` protocol, so every
evaluator path (serial, worker pool, lockstep lanes) runs it unchanged.

``build_batched_env`` hands :func:`repro.envs.make_batched` a scenario
factory: a params-only scenario still rides the numpy physics port
(constants come off the configured template instance), while any
perturbed scenario is rejected by the port's template check and drops to
the lockstep fallback — which steps factory-built envs and is therefore
bit-identical to the scalar path by construction.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..envs import Environment, make, make_batched
from ..envs.batched import BatchedEnv
from .spec import ScenarioSpec
from .wrappers import apply_perturbation


def build_env(scenario: ScenarioSpec, seed: Optional[int] = None) -> Environment:
    """A live environment for a (curriculum-free) scenario."""
    env = make(scenario.env_id, seed=seed)
    if scenario.params:
        env.configure(**scenario.params)
    for position, perturbation in enumerate(scenario.perturbations):
        env = apply_perturbation(env, perturbation, position)
    if seed is not None:
        env.seed(seed)  # re-seed through the wrapper stack
    return env


def env_factory(scenario: ScenarioSpec) -> Callable[[], Environment]:
    """A zero-argument factory building fresh scenario envs (for lanes)."""
    return lambda: build_env(scenario)


def build_batched_env(scenario: ScenarioSpec) -> BatchedEnv:
    """A batched environment honouring the scenario (see module docs)."""
    return make_batched(scenario.env_id, factory=env_factory(scenario))
