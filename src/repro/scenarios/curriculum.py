"""Curriculum schedules: difficulty stages applied at generation boundaries.

Two modes:

* ``fixed`` — stages keyed by generation number (`at_generation`); the
  stage for generation *g* is the last stage whose boundary is <= *g*.
* ``adaptive`` — advance to the next stage once the champion fitness has
  met the current stage's exit threshold for ``patience`` consecutive
  generations (NEAT's complexification chasing a moving target, per
  the Stanley & Miikkulainen framing in PAPERS.md).

Stage decisions are a *pure fold* over the per-generation champion
fitness history, and switches only ever apply to the **next** generation.
That makes checkpoint/resume byte-identical by construction: on resume
the :class:`CurriculumController` replays the metrics rows already on
disk and lands in exactly the state the uninterrupted run would hold.

The controller also derives the continuous-learning metrics the
task-switch bench reports: per-generation ``scenario_forgetting`` (how
far the champion fell below its best on the previous stage) and
``scenario_recovery`` (generations taken to regain that level), written
into ``metrics.jsonl`` alongside the fitness columns.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .spec import (
    PerturbationSpec,
    ScenarioSpecError,
    _coerce_perturbations,
    _require_number,
)

CURRICULUM_MODES = ("fixed", "adaptive")


@dataclass(frozen=True)
class CurriculumStage:
    """One difficulty stage: parameter overrides plus scheduling keys.

    ``params`` merge over the scenario's base params; ``perturbations``
    (when not None) *replace* the base perturbation stack.
    ``at_generation`` keys fixed schedules; ``threshold`` overrides the
    schedule-wide exit threshold in adaptive mode.
    """

    params: Dict[str, float] = field(default_factory=dict)
    perturbations: Optional[Tuple[PerturbationSpec, ...]] = None
    at_generation: Optional[int] = None
    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.params, dict):
            raise ScenarioSpecError(
                f"stage params must be a mapping, got {self.params!r}"
            )
        params = {
            key: _require_number(f"stage params.{key}", value)
            for key, value in self.params.items()
        }
        object.__setattr__(self, "params", params)
        if self.perturbations is not None:
            object.__setattr__(
                self, "perturbations", _coerce_perturbations(self.perturbations)
            )
        if self.at_generation is not None:
            if isinstance(self.at_generation, bool) or not isinstance(
                self.at_generation, int
            ):
                raise ScenarioSpecError(
                    f"at_generation must be an integer, got {self.at_generation!r}"
                )
            if self.at_generation < 0:
                raise ScenarioSpecError(
                    f"at_generation must be >= 0, got {self.at_generation}"
                )
        if self.threshold is not None:
            object.__setattr__(
                self, "threshold", _require_number("stage threshold", self.threshold)
            )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"params": dict(self.params)}
        if self.perturbations is not None:
            data["perturbations"] = [p.to_dict() for p in self.perturbations]
        if self.at_generation is not None:
            data["at_generation"] = self.at_generation
        if self.threshold is not None:
            data["threshold"] = self.threshold
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CurriculumStage":
        if not isinstance(data, dict):
            raise ScenarioSpecError(f"stage must be a mapping, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioSpecError(f"unknown stage field(s): {unknown}")
        return cls(**data)


@dataclass(frozen=True)
class CurriculumSchedule:
    """An ordered stage sequence plus the advancement rule."""

    stages: Tuple[CurriculumStage, ...] = ()
    mode: str = "fixed"
    advance_threshold: Optional[float] = None
    patience: int = 1

    def __post_init__(self) -> None:
        if self.mode not in CURRICULUM_MODES:
            raise ScenarioSpecError(
                f"unknown curriculum mode {self.mode!r}; known: "
                f"{list(CURRICULUM_MODES)}"
            )
        stages = []
        for stage in self.stages:
            if isinstance(stage, dict):
                stage = CurriculumStage.from_dict(stage)
            if not isinstance(stage, CurriculumStage):
                raise ScenarioSpecError(f"invalid curriculum stage: {stage!r}")
            stages.append(stage)
        object.__setattr__(self, "stages", tuple(stages))
        if len(self.stages) < 2:
            raise ScenarioSpecError(
                f"a curriculum needs at least 2 stages, got {len(self.stages)}"
            )
        if self.advance_threshold is not None:
            object.__setattr__(
                self,
                "advance_threshold",
                _require_number("advance_threshold", self.advance_threshold),
            )
        if isinstance(self.patience, bool) or not isinstance(self.patience, int):
            raise ScenarioSpecError(
                f"patience must be an integer, got {self.patience!r}"
            )
        if self.patience < 1:
            raise ScenarioSpecError(f"patience must be >= 1, got {self.patience}")
        if self.mode == "fixed":
            self._validate_fixed()
        else:
            self._validate_adaptive()

    def _validate_fixed(self) -> None:
        first = self.stages[0].at_generation
        if first not in (None, 0):
            raise ScenarioSpecError(
                f"fixed curriculum stage 0 must start at generation 0, "
                f"got at_generation={first}"
            )
        previous = 0
        for i, stage in enumerate(self.stages[1:], start=1):
            if stage.at_generation is None:
                raise ScenarioSpecError(
                    f"fixed curriculum stage {i} needs at_generation"
                )
            if stage.at_generation <= previous:
                raise ScenarioSpecError(
                    "fixed curriculum at_generation values must be strictly "
                    f"increasing; stage {i} has {stage.at_generation}"
                )
            previous = stage.at_generation
        for i, stage in enumerate(self.stages):
            if stage.threshold is not None:
                raise ScenarioSpecError(
                    f"fixed curriculum stage {i} must not set threshold"
                )

    def _validate_adaptive(self) -> None:
        for i, stage in enumerate(self.stages):
            if stage.at_generation is not None:
                raise ScenarioSpecError(
                    f"adaptive curriculum stage {i} must not set at_generation"
                )
        for i in range(len(self.stages) - 1):  # the last stage never exits
            if self.exit_threshold(i) is None:
                raise ScenarioSpecError(
                    f"adaptive curriculum stage {i} has no exit threshold; "
                    "set advance_threshold or a per-stage threshold"
                )

    # -- schedule queries ---------------------------------------------------

    def exit_threshold(self, stage: int) -> Optional[float]:
        override = self.stages[stage].threshold
        return override if override is not None else self.advance_threshold

    def stage_for_generation(self, generation: int) -> int:
        """Fixed mode: the stage active at ``generation``."""
        current = 0
        for i, stage in enumerate(self.stages[1:], start=1):
            if stage.at_generation <= generation:
                current = i
        return current

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "mode": self.mode,
            "stages": [stage.to_dict() for stage in self.stages],
            "patience": self.patience,
        }
        if self.advance_threshold is not None:
            data["advance_threshold"] = self.advance_threshold
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CurriculumSchedule":
        if not isinstance(data, dict):
            raise ScenarioSpecError(f"curriculum must be a mapping, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioSpecError(f"unknown curriculum field(s): {unknown}")
        return cls(**data)


class CurriculumController:
    """Runtime curriculum state: a deterministic fold over champion fitness.

    One :meth:`step` call per completed generation annotates the metrics
    row with the stage it was evaluated under (plus forgetting/recovery
    once a switch has happened), folds the advancement rule, and returns
    the new stage index when the *next* generation should run on a
    different stage.  :meth:`restore` replays previously recorded metrics
    rows through the same fold, so a resumed run is state-identical to an
    uninterrupted one at every boundary.
    """

    def __init__(self, scenario) -> None:
        self.scenario = scenario
        self.schedule: Optional[CurriculumSchedule] = scenario.curriculum
        self.stage = 0
        self._streak = 0
        self._stage_best: Optional[float] = None
        self._pre_switch_best: Optional[float] = None
        self._switch_generation: Optional[int] = None
        self._recovered: Optional[int] = None

    def active_scenario(self):
        """The curriculum-free scenario for the current stage."""
        return self.scenario.stage_scenario(self.stage)

    def restore(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Replay recorded metrics rows (in generation order)."""
        for row in rows:
            self.step(int(row["generation"]), float(row["best_fitness"]))

    def step(
        self, generation: int, best_fitness: float, metrics=None
    ) -> Optional[int]:
        """Fold one completed generation; returns the new stage on a switch."""
        if metrics is not None:
            metrics.scenario_stage = self.stage
        if self._stage_best is None or best_fitness > self._stage_best:
            self._stage_best = best_fitness
        if self._pre_switch_best is not None:
            if metrics is not None:
                metrics.scenario_forgetting = max(
                    0.0, self._pre_switch_best - best_fitness
                )
            if self._recovered is None and best_fitness >= self._pre_switch_best:
                self._recovered = generation - self._switch_generation + 1
                if metrics is not None:
                    metrics.scenario_recovery = self._recovered
        target = self._advance(generation, best_fitness)
        if target is None:
            return None
        self._pre_switch_best = self._stage_best
        self._switch_generation = generation + 1
        self._stage_best = None
        self._recovered = None
        self._streak = 0
        self.stage = target
        return target

    def _advance(self, generation: int, best_fitness: float) -> Optional[int]:
        schedule = self.schedule
        if schedule is None:
            return None
        if schedule.mode == "fixed":
            target = schedule.stage_for_generation(generation + 1)
            return target if target > self.stage else None
        if self.stage >= len(schedule.stages) - 1:
            return None
        if best_fitness >= schedule.exit_threshold(self.stage):
            self._streak += 1
            if self._streak >= schedule.patience:
                return self.stage + 1
        else:
            self._streak = 0
        return None


def switch_report(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-switch forgetting/recovery summary from recorded metrics rows.

    One output row per stage switch observed in ``rows``: the generation
    the new stage took over, the stage indices, the worst forgetting seen
    on the new stage, and the recovery time (None when the run ended
    before the champion regained its pre-switch level).
    """
    report: List[Dict[str, Any]] = []
    current = None
    previous_stage = None
    for row in rows:
        stage = row.get("scenario_stage")
        if stage is None:
            continue
        if previous_stage is not None and stage != previous_stage:
            current = {
                "generation": int(row["generation"]),
                "from_stage": previous_stage,
                "to_stage": stage,
                "max_forgetting": 0.0,
                "recovery_generations": None,
            }
            report.append(current)
        previous_stage = stage
        if current is not None and stage == current["to_stage"]:
            forgetting = row.get("scenario_forgetting")
            if forgetting is not None:
                current["max_forgetting"] = max(
                    current["max_forgetting"], float(forgetting)
                )
            recovery = row.get("scenario_recovery")
            if recovery is not None and current["recovery_generations"] is None:
                current["recovery_generations"] = int(recovery)
    return report
