"""Built-in scenario library.

A small catalogue of ready-made variants over the canonical envs; users
add their own via :func:`repro.scenarios.register_scenario` or pass spec
files to ``repro run --scenario``.  Lives in its own module (imported by
the package ``__init__``) because registration instantiates
:class:`ScenarioSpec`, which needs the curriculum module fully loaded.
"""

from __future__ import annotations

from .spec import PerturbationSpec, ScenarioSpec, register_scenario

register_scenario(
    "cartpole-short-pole",
    ScenarioSpec(env_id="CartPole-v0", params={"length": 0.25}),
)
register_scenario(
    "cartpole-long-pole",
    ScenarioSpec(env_id="CartPole-v0", params={"length": 1.0, "masspole": 0.2}),
)
register_scenario(
    "cartpole-windy",
    ScenarioSpec(
        env_id="CartPole-v0",
        perturbations=(
            PerturbationSpec("observation_noise", {"std": 0.05}),
            PerturbationSpec("action_dropout", {"prob": 0.05}),
        ),
    ),
)
register_scenario(
    "cartpole-jittery",
    ScenarioSpec(
        env_id="CartPole-v0",
        perturbations=(
            PerturbationSpec(
                "parameter_jitter",
                {"scale": 0.1, "params": ("length", "force_mag")},
            ),
        ),
    ),
)
register_scenario(
    "cartpole-pole-curriculum",
    ScenarioSpec(
        env_id="CartPole-v0",
        curriculum={
            "mode": "adaptive",
            "advance_threshold": 60.0,
            "patience": 2,
            "stages": [
                {"params": {"length": 0.5}},
                {"params": {"length": 0.75, "force_mag": 8.0}},
                {"params": {"length": 1.0, "force_mag": 6.0}},
            ],
        },
    ),
)
register_scenario(
    "mountaincar-weak-engine",
    ScenarioSpec(env_id="MountainCar-v0", params={"force": 0.0008}),
)
