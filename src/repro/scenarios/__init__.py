"""repro.scenarios: the environment as a first-class spec axis.

Parameterised env variants, adversarial perturbation wrappers, and
curriculum schedules — JSON-round-trippable, content-addressed, and
byte-identical across checkpoint/resume.  See ``docs/scenarios.md``.
"""

from .continual import continual_report, export_continual_csv
from .curriculum import (
    CURRICULUM_MODES,
    CurriculumController,
    CurriculumSchedule,
    CurriculumStage,
    switch_report,
)
from .runtime import build_batched_env, build_env, env_factory
from .spec import (
    PERTURBATION_KINDS,
    PerturbationSpec,
    ScenarioSpec,
    ScenarioSpecError,
    UnknownScenarioError,
    as_scenario_spec,
    get_scenario,
    register_scenario,
    registered_scenarios,
    scenario_names,
    unregister_scenario,
)
from .wrappers import (
    ActionDropoutWrapper,
    ObservationNoiseWrapper,
    ParameterJitterWrapper,
    PerturbationWrapper,
)
from . import library  # noqa: F401  (registers the built-in scenarios)

__all__ = [
    "CURRICULUM_MODES",
    "CurriculumController",
    "CurriculumSchedule",
    "CurriculumStage",
    "PERTURBATION_KINDS",
    "PerturbationSpec",
    "ScenarioSpec",
    "ScenarioSpecError",
    "UnknownScenarioError",
    "ActionDropoutWrapper",
    "ObservationNoiseWrapper",
    "ParameterJitterWrapper",
    "PerturbationWrapper",
    "as_scenario_spec",
    "build_batched_env",
    "build_env",
    "continual_report",
    "env_factory",
    "export_continual_csv",
    "get_scenario",
    "register_scenario",
    "registered_scenarios",
    "scenario_names",
    "switch_report",
    "unregister_scenario",
]
