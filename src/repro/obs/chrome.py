"""Post-hoc trace analysis: Chrome trace export and phase breakdown.

``telemetry.jsonl`` rows (see :mod:`repro.obs.tracer`) convert to the
`Chrome trace event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
so any traced run opens in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: spans become complete (``"ph": "X"``) duration
events on their process track, counters become counter (``"ph": "C"``)
events.  ``repro trace RUN_DIR --export chrome`` is the CLI entry.

:func:`phase_summary` aggregates span rows into the software equivalent
of the paper's Fig. 10 runtime breakdown — where a run's wall-clock
went, phase by phase — which ``repro trace RUN_DIR`` prints by default.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union

from .tracer import read_telemetry


def chrome_trace(rows: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Telemetry rows -> a Chrome trace-event JSON object.

    Timestamps and durations are microseconds in the trace format; wall
    clock anchors each event so multi-process rows line up on one
    timeline.  Unknown row types are ignored (forward compatibility).
    """
    events: List[Dict[str, Any]] = []
    for row in rows:
        kind = row.get("type")
        ts_us = float(row.get("ts", 0.0)) * 1e6
        pid = int(row.get("pid", 0))
        if kind == "span":
            event = {
                "name": str(row.get("name", "?")),
                "ph": "X",
                "ts": ts_us,
                "dur": float(row.get("dur_s", 0.0)) * 1e6,
                "pid": pid,
                "tid": pid,
                "cat": "repro",
            }
            args = dict(row.get("attrs") or {})
            if "error" in row:
                args["error"] = row["error"]
            if args:
                event["args"] = args
            events.append(event)
        elif kind == "counter":
            events.append({
                "name": str(row.get("name", "?")),
                "ph": "C",
                "ts": ts_us,
                "pid": pid,
                "cat": "repro",
                "args": {"total": row.get("total", row.get("value", 0))},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    telemetry_path: Union[str, Path], out_path: Union[str, Path]
) -> int:
    """Write the Chrome trace for one telemetry file; returns the event
    count."""
    trace = chrome_trace(read_telemetry(telemetry_path))
    Path(out_path).write_text(json.dumps(trace, sort_keys=True) + "\n")
    return len(trace["traceEvents"])


def phase_summary(
    rows: Sequence[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Aggregate span rows by name: count, total/mean seconds, share.

    The share is of the summed span time (phases nest — ``run`` contains
    ``evaluate`` — so shares are a profile, not a partition).  Sorted by
    total time, longest first.
    """
    totals: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for row in rows:
        if row.get("type") != "span":
            continue
        name = str(row.get("name", "?"))
        if name not in totals:
            totals[name] = {"phase": name, "count": 0, "total_s": 0.0}
            order.append(name)
        totals[name]["count"] += 1
        totals[name]["total_s"] += float(row.get("dur_s", 0.0))
    grand = sum(t["total_s"] for t in totals.values()) or 1.0
    summary = [
        {
            **totals[name],
            "mean_s": totals[name]["total_s"] / totals[name]["count"],
            "share": totals[name]["total_s"] / grand,
        }
        for name in order
    ]
    summary.sort(key=lambda entry: -entry["total_s"])
    return summary
