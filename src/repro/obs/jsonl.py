"""Incremental JSONL readers: follow a growing file without re-reading it.

Every follower in the codebase used to re-read its whole JSONL file on
each poll (``repro job --follow`` over ``metrics.jsonl``, the
scheduler's generation sampler) — O(file) per poll, O(file^2) per run.
:class:`JsonlTail` keeps a byte offset instead, mirroring the HTTP API's
``?since=`` cursor semantics at the file layer:

* only bytes past the offset are read on each :meth:`poll`;
* a **torn tail** (an append caught mid-write: no trailing newline yet)
  is left unconsumed — the offset stops at the last complete line and
  the torn bytes are re-read whole on a later poll;
* **truncation** (the file shrank — a resume rewound ``metrics.jsonl``
  to its checkpoint boundary) resets the offset to zero so the rewritten
  prefix is re-delivered; callers that de-duplicate (e.g. by generation
  number, as ``--follow`` does) see each logical row once;
* a missing file is not an error — it just has no rows yet.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Union


class JsonlTail:
    """Cursor over one append-mostly JSONL file (see module docstring)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: Byte offset of the first unconsumed byte.
        self.offset = 0

    def __repr__(self) -> str:
        return f"JsonlTail({str(self.path)!r}, offset={self.offset})"

    def poll(self) -> List[Dict[str, Any]]:
        """Decoded rows appended since the last poll (possibly none).

        Undecodable complete lines are skipped (the same tolerance every
        JSONL reader here applies); an incomplete final line is left for
        the next poll.
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            # Vanished or not created yet: restart from the beginning
            # when it (re)appears.
            self.offset = 0
            return []
        if size < self.offset:
            self.offset = 0  # truncated (resume rewind): re-deliver
        if size == self.offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            blob = handle.read(size - self.offset)
        end = blob.rfind(b"\n")
        if end < 0:
            return []  # torn tail only — wait for the newline
        complete, self.offset = blob[: end + 1], self.offset + end + 1
        rows: List[Dict[str, Any]] = []
        for line in complete.splitlines():
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict):
                rows.append(row)
        return rows
