"""The span/counter tracer: zero-dependency, no-op-fast when disabled.

One module-global tracer (or none).  Call sites do::

    from .. import obs

    with obs.span("evaluate", generation=3, genomes=150) as sp:
        ...
        sp.set(compiled=148)
    obs.incr("dse.cache_hit")

With no tracer installed, :func:`span` returns a shared singleton whose
``__enter__``/``__exit__``/``set`` are no-ops — one global read and one
call per span, which is what keeps the disabled overhead under the 2%
gate (``benchmarks/bench_obs_overhead.py``).  Instrumentation therefore
stays at generation/phase/chunk granularity, never per environment step.

With a tracer installed, every finished span and every counter bump
appends one JSON line to the tracer's path.  The sink opens in append
mode per line and writes the line in a single ``write`` call, so
concurrent writers — pool workers forked after the tracer was installed,
the parent process, threads — interleave whole lines rather than bytes.
Readers tolerate a torn tail the same way ``metrics.jsonl`` readers do.

Telemetry is strictly out-of-band: nothing in this module touches run
artifacts, cache keys or checkpoints, and the byte-identity test in
``tests/test_obs.py`` pins that a traced run's artifacts equal an
untraced run's.

Row formats (``type`` discriminates)::

    {"type": "span", "name": "evaluate", "ts": <wall-clock start>,
     "dur_s": 0.0123, "pid": 1234, "attrs": {...}}          # attrs optional
    {"type": "counter", "name": "dse.cache_hit", "ts": <wall clock>,
     "value": 1, "total": 7, "pid": 1234}

Activation (see :mod:`repro.runs.runner` and the CLI):

* ``repro run --trace`` / ``run_in_dir(..., trace=True)`` / the
  ``REPRO_TRACE`` environment variable write ``telemetry.jsonl`` into
  the run directory (serve workers inherit the env var, so every job
  gets per-run telemetry);
* ``REPRO_TRACE_FILE=PATH`` installs a process-wide tracer at CLI
  startup for commands with no run dir (``repro dse`` sweeps).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

#: Truthy values accepted by the activation environment variables.
TRACE_ENV_VAR = "REPRO_TRACE"
TRACE_FILE_ENV_VAR = "REPRO_TRACE_FILE"
_FALSY = {"", "0", "false", "no", "off"}

#: Filename of the per-run telemetry artifact inside a run directory.
TELEMETRY_FILENAME = "telemetry.jsonl"


def env_trace_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """Does ``REPRO_TRACE`` ask for per-run telemetry?"""
    value = (environ if environ is not None else os.environ).get(
        TRACE_ENV_VAR, ""
    )
    return value.strip().lower() not in _FALSY


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: Any) -> bool:
        return False

    def set(self, **_attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One timed phase; use as a context manager.

    Wall-clock start (``time.time``) anchors the trace on a real
    timeline; the duration comes from ``perf_counter`` so it survives
    clock adjustments.  ``set(**attrs)`` attaches attributes any time
    before exit (e.g. a count only known at the end of the phase).
    """

    __slots__ = ("name", "attrs", "_tracer", "_wall", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._wall = 0.0
        self._start = 0.0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        duration = time.perf_counter() - self._start
        row: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "ts": self._wall,
            "dur_s": duration,
            "pid": os.getpid(),
        }
        if exc_type is not None:
            row["error"] = exc_type.__name__
        if self.attrs:
            row["attrs"] = self.attrs
        self._tracer.emit(row)
        return False  # never swallow exceptions


class Tracer:
    """Append JSON rows to one telemetry file.

    The file handle is not kept open: each row opens/appends/closes, so
    the tracer is fork-safe (children inherit the *path*, not a shared
    file position) and several processes can feed one file.  Counter
    totals are per-process — the cumulative ``total`` restarts in each
    worker; cross-process aggregation sums the ``value`` deltas.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}

    def __repr__(self) -> str:
        return f"Tracer({self.path!r})"

    def emit(self, row: Dict[str, Any]) -> None:
        line = json.dumps(row, sort_keys=True, default=str) + "\n"
        with self._lock:
            with open(self.path, "a") as handle:
                handle.write(line)

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def incr(self, name: str, value: int = 1, **attrs: Any) -> None:
        with self._lock:
            total = self._counters.get(name, 0) + value
            self._counters[name] = total
        row: Dict[str, Any] = {
            "type": "counter",
            "name": name,
            "ts": time.time(),
            "value": value,
            "total": total,
            "pid": os.getpid(),
        }
        if attrs:
            row["attrs"] = attrs
        self.emit(row)


_TRACER: Optional[Tracer] = None


def current() -> Optional[Tracer]:
    """The installed tracer, or None while tracing is disabled."""
    return _TRACER


def install(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide sink; returns it."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall() -> None:
    global _TRACER
    _TRACER = None


def span(name: str, **attrs: Any):
    """A context manager timing one phase (no-op when disabled)."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def incr(name: str, value: int = 1, **attrs: Any) -> None:
    """Bump a monotonic counter (no-op when disabled)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.incr(name, value, **attrs)


@contextmanager
def tracing(path: Union[str, Path]) -> Iterator[Tracer]:
    """Install a tracer writing to ``path`` for the block's duration,
    restoring whatever was installed before (including nothing)."""
    global _TRACER
    previous = _TRACER
    tracer = Tracer(path)
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous


def read_telemetry(path: Union[str, Path]) -> list:
    """All rows of a ``telemetry.jsonl`` file, torn tail tolerated.

    Concurrent multi-process writers make a torn (or interleaved) line
    possible anywhere, so *any* undecodable line is skipped — telemetry
    is diagnostic data, not a ledger.
    """
    path = Path(path)
    if not path.exists():
        return []
    rows = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return rows
