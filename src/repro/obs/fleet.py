"""Fleet-level observability over a serve root.

One snapshot function feeds two surfaces:

* ``GET /metrics`` on the serve HTTP API — Prometheus text exposition
  (:func:`prometheus_text`): job-state gauges, queue depth and per-job
  heartbeat ages derived from the store at scrape time, concatenated
  with the scheduler's own counter/histogram registry when one is
  attached;
* ``repro top ROOT`` — a live one-screen fleet view
  (:func:`render_top`).

Everything reads the on-disk store, so both work with or without a
scheduler in the process (a standalone API server still exposes the
store-derived gauges; the scheduler counters simply aren't there).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry


def snapshot_fleet(store, detail: bool = False) -> Dict[str, Any]:
    """The serve root's current shape, JSON-friendly.

    ``detail=False`` (the scrape path) reads only job records and lock
    heartbeats — O(jobs) small files.  ``detail=True`` (the ``repro
    top`` path) additionally pulls each job's derived progress
    (:meth:`JobStore.describe`: best fitness, metrics rows), which reads
    run artifacts and costs more per refresh.
    """
    from ..runs.locking import read_lock
    from ..serve.jobs import JOB_STATES, RUNNING, WAITING_STATES

    now = time.time()
    states = {state: 0 for state in JOB_STATES}
    states["other"] = 0
    jobs: List[Dict[str, Any]] = []
    queue_depth = 0
    for record in store.list_jobs():
        states[record.state if record.state in states else "other"] += 1
        if record.state in WAITING_STATES:
            queue_depth += 1
        if detail:
            payload = store.describe(record.id)
        else:
            payload = record.to_dict()
        payload["heartbeat_age_s"] = None
        if record.state == RUNNING:
            lock = read_lock(store.run_dir(record.id).path)
            if lock is not None:
                payload["heartbeat_age_s"] = max(
                    0.0, now - float(lock.get("heartbeat_at", now))
                )
        jobs.append(payload)
    return {
        "ts": now,
        "root": str(store.root),
        "states": states,
        "queue_depth": queue_depth,
        "jobs": jobs,
    }


def prometheus_text(
    store, registry: Optional[MetricsRegistry] = None
) -> str:
    """The serve root as Prometheus text exposition format 0.0.4.

    Store-derived gauges are computed fresh per scrape; ``registry``
    (the scheduler's counters and histograms, when the server runs next
    to one) renders after them.  The two must not share metric names.
    """
    snapshot = snapshot_fleet(store)
    fleet = MetricsRegistry()
    jobs_gauge = fleet.gauge(
        "repro_jobs", "Jobs in the serve root by lifecycle state."
    )
    for state, count in snapshot["states"].items():
        jobs_gauge.set(count, state=state)
    fleet.gauge(
        "repro_queue_depth",
        "Jobs waiting for a worker slot (queued + preempted).",
    ).set(snapshot["queue_depth"])
    fleet.gauge(
        "repro_running_jobs", "Jobs currently holding a worker slot."
    ).set(snapshot["states"].get("running", 0))
    heartbeat = fleet.gauge(
        "repro_heartbeat_age_seconds",
        "Seconds since each running job's run-lock heartbeat.",
    )
    generations = fleet.gauge(
        "repro_job_generations_done",
        "Checkpointed generations per non-terminal job.",
    )
    for job in snapshot["jobs"]:
        if job["heartbeat_age_s"] is not None:
            heartbeat.set(job["heartbeat_age_s"], job=job["id"])
        if job["state"] not in ("done", "failed", "cancelled"):
            generations.set(
                float(job.get("generations_done") or 0), job=job["id"]
            )
    text = fleet.render()
    if registry is not None:
        text += registry.render()
    return text


def _fmt_age(age: Optional[float]) -> str:
    if age is None:
        return "-"
    if age < 120:
        return f"{age:.1f}s"
    return f"{age / 60:.1f}m"


def render_top(snapshot: Dict[str, Any]) -> str:
    """One screenful of fleet state from a ``detail=True`` snapshot."""
    from ..analysis.reporting import render_table

    states = snapshot["states"]
    rows = []
    for job in snapshot["jobs"]:
        spec = job.get("spec") or {}
        best = job.get("best_fitness")
        total = spec.get("max_generations", "?")
        rows.append([
            job["id"],
            job["state"],
            job.get("priority", 0),
            spec.get("env_id", "?"),
            spec.get("backend", "?"),
            f"{job.get('generations_done') or 0}/{total}",
            "-" if best is None else f"{best:.2f}",
            _fmt_age(job.get("heartbeat_age_s")),
        ])
    table = render_table(
        ["job", "state", "priority", "environment", "backend",
         "generations", "best", "heartbeat"],
        rows,
        title=f"Fleet: {snapshot['root']}",
    )
    summary = "  ".join(
        f"{state}={count}"
        for state, count in states.items()
        if count or state in ("queued", "running", "done")
    )
    stamp = time.strftime(
        "%H:%M:%S", time.localtime(snapshot["ts"])
    )
    return (
        f"{table}\n"
        f"{summary}  queue_depth={snapshot['queue_depth']}  [{stamp}]"
    )
