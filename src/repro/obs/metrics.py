"""A minimal Prometheus metrics registry — text exposition, no client dep.

Implements just enough of the `text exposition format 0.0.4
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ for the
serve subsystem's ``GET /metrics``: counters, gauges and cumulative
histograms, each with optional labels, rendered as::

    # HELP repro_preemptions_total Preemptions settled ...
    # TYPE repro_preemptions_total counter
    repro_preemptions_total 3
    repro_jobs{state="queued"} 2
    repro_generation_seconds_bucket{le="0.5"} 12
    repro_generation_seconds_sum 4.2
    repro_generation_seconds_count 13

Thread-safe: one lock per registry guards metric creation and sample
updates, so the scheduler loop can bump counters while HTTP scrape
threads render — the concurrency the ThreadingHTTPServer test exercises.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets (seconds) — sized for generation latencies
#: that range from milliseconds (tiny CI populations) to minutes.
DEFAULT_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        self.name = name
        self.help = help_text
        self._lock = lock
        self._samples: Dict[_LabelKey, Any] = {}

    def _header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """A monotonically increasing count (optionally per label set)."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._samples.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            samples = dict(self._samples) or {(): 0.0}
        for key in sorted(samples):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(samples[key])}"
            )
        return lines


class Gauge(_Metric):
    """A value that can go anywhere (queue depth, heartbeat age)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._samples[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> Optional[float]:
        with self._lock:
            return self._samples.get(_label_key(labels))

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            samples = dict(self._samples)
        for key in sorted(samples):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(samples[key])}"
            )
        return lines


class Histogram(_Metric):
    """Cumulative-bucket histogram (``le`` buckets + ``_sum``/``_count``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, lock)
        self.buckets = tuple(sorted(buckets))

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = {
                    "counts": [0] * len(self.buckets),
                    "sum": 0.0,
                    "count": 0,
                }
                self._samples[key] = state
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state["counts"][index] += 1
            state["sum"] += value
            state["count"] += 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            state = self._samples.get(_label_key(labels))
            return state["count"] if state else 0

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            samples = {
                key: {
                    "counts": list(state["counts"]),
                    "sum": state["sum"],
                    "count": state["count"],
                }
                for key, state in self._samples.items()
            }
        for key in sorted(samples):
            state = samples[key]
            for bound, cumulative in zip(self.buckets, state["counts"]):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, [('le', _format_value(bound))])} "
                    f"{cumulative}"
                )
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(key, [('le', '+Inf')])} {state['count']}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(state['sum'])}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(key)} {state['count']}"
            )
        return lines


class MetricsRegistry:
    """Named metrics with one render surface.

    Re-registering a name returns the existing metric (so instrumenting
    code can declare metrics idempotently), but never with a different
    kind — that would be a bug, not a merge.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help_text, threading.Lock(), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str) -> Counter:
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._register(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help_text, buckets=buckets)

    def render(self) -> str:
        """The registry in text exposition format (trailing newline)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""


#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """A standalone ``GET /metrics`` endpoint for one registry.

    The serve subsystem embeds its registry in the job API's HTTP
    server; processes without one — the distributed DSE workers — use
    this instead.  ``port=0`` (the default) binds an ephemeral port;
    read :attr:`port` after :meth:`start`.  Scrapes run on daemon
    threads, so a hung scraper never blocks the worker loop.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("MetricsServer is not running")
        return self._server.server_address[1]

    def start(self) -> "MetricsServer":
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics lives here")
                    return
                body = registry.render().encode()
                self.send_response(200)
                self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *_args: Any) -> None:
                pass  # scrapes are not worker output

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name="metrics-server",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
