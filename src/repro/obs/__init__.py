"""Structured telemetry: spans, counters, metrics, traces (``repro.obs``).

The observability layer for every execution path — see
``docs/observability.md``:

* :func:`span` / :func:`incr` — the zero-dependency tracer call sites
  sprinkled through the runner, the parallel evaluator, the compiled
  batch engine, the SoC model and the DSE sweep engine.  No-ops (one
  global read) until a :class:`Tracer` is installed, so the disabled
  overhead is gated at <=2% (``benchmarks/bench_obs_overhead.py``).
* ``telemetry.jsonl`` — the per-run artifact :func:`repro.runs.run_in_dir`
  writes when tracing is on (``--trace`` / ``REPRO_TRACE``); strictly
  out-of-band, so traced runs stay byte-identical to untraced ones.
* :func:`chrome_trace` / :func:`export_chrome_trace` — open any traced
  run in Perfetto; :func:`phase_summary` is the Fig. 10-style runtime
  breakdown ``repro trace RUN_DIR`` prints.
* :class:`MetricsRegistry` + :func:`prometheus_text` — the scrapeable
  ``GET /metrics`` surface of the serve HTTP API and the data behind
  ``repro top``.
* :class:`JsonlTail` — incremental JSONL following (byte-offset cursor,
  torn-tail and truncation aware) for every poll loop.
"""

from .chrome import chrome_trace, export_chrome_trace, phase_summary
from .fleet import prometheus_text, render_top, snapshot_fleet
from .jsonl import JsonlTail
from .metrics import (
    DEFAULT_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
)
from .tracer import (
    TELEMETRY_FILENAME,
    TRACE_ENV_VAR,
    TRACE_FILE_ENV_VAR,
    Span,
    Tracer,
    current,
    env_trace_enabled,
    incr,
    install,
    read_telemetry,
    span,
    tracing,
    uninstall,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlTail",
    "MetricsRegistry",
    "MetricsServer",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "TELEMETRY_FILENAME",
    "TRACE_ENV_VAR",
    "TRACE_FILE_ENV_VAR",
    "Tracer",
    "chrome_trace",
    "current",
    "env_trace_enabled",
    "export_chrome_trace",
    "incr",
    "install",
    "phase_summary",
    "prometheus_text",
    "read_telemetry",
    "render_top",
    "snapshot_fleet",
    "span",
    "tracing",
    "uninstall",
]
