"""Generate the checked-in CLI reference (``docs/cli.md``).

The reference page is the live ``--help`` output of every ``repro``
subcommand, rendered at a pinned width so the bytes are reproducible
across terminals and CI runners.  ``tests/test_docs.py`` asserts the
committed page matches this generator, so the docs can never drift from
the argparse tree:

```bash
PYTHONPATH=src python -m repro.docsgen            # rewrite docs/cli.md
PYTHONPATH=src python -m repro.docsgen --check    # CI freshness gate
```
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from .cli import build_parser

#: Help text renders at this terminal width, pinned for reproducibility.
HELP_WIDTH = 80

DEFAULT_OUTPUT = Path("docs") / "cli.md"

_HEADER = """\
# CLI reference

<!-- Generated file — do not edit by hand.
     Regenerate with: PYTHONPATH=src python -m repro.docsgen -->

Every command is available as `python -m repro <command>` (or plain
`repro <command>` after `pip install -e .`).  This page is the live
`--help` output of each subcommand; `tests/test_docs.py` asserts it
matches the code, and `python -m repro.docsgen` regenerates it.
"""


class _PinnedWidth:
    """Temporarily pin ``COLUMNS`` so argparse wraps deterministically."""

    def __enter__(self) -> "_PinnedWidth":
        self._saved = os.environ.get("COLUMNS")
        os.environ["COLUMNS"] = str(HELP_WIDTH)
        return self

    def __exit__(self, *_exc) -> None:
        if self._saved is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = self._saved


def _subcommands(parser: argparse.ArgumentParser):
    """``(name, subparser)`` pairs from the one subparsers action."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            seen = set()
            for name, sub in action.choices.items():
                if id(sub) not in seen:  # aliases share a parser
                    seen.add(id(sub))
                    yield name, sub


def cli_reference_markdown() -> str:
    """The whole ``docs/cli.md`` page as a string."""
    with _PinnedWidth():
        parser = build_parser()
        sections: List[str] = [_HEADER]
        sections.append("## `repro`\n\n```text\n"
                        + parser.format_help().rstrip() + "\n```\n")
        for name, sub in _subcommands(parser):
            sections.append(
                f"## `repro {name}`\n\n```text\n"
                + sub.format_help().rstrip() + "\n```\n"
            )
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.docsgen",
        description="Regenerate (or check) the committed CLI reference.",
    )
    parser.add_argument("output", nargs="?", default=str(DEFAULT_OUTPUT),
                        help=f"target file (default {DEFAULT_OUTPUT})")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if the file is stale instead of "
                             "rewriting it")
    args = parser.parse_args(argv)

    target = Path(args.output)
    rendered = cli_reference_markdown()
    if args.check:
        current = target.read_text() if target.exists() else None
        if current != rendered:
            print(f"{target} is stale; regenerate with "
                  "'PYTHONPATH=src python -m repro.docsgen'",
                  file=sys.stderr)
            return 1
        print(f"{target} is up to date")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rendered)
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
