"""CartPole-v0: balance an inverted pendulum on a moving platform.

Exact port of the OpenAI gym classic-control dynamics (Barto, Sutton &
Anderson 1983 as implemented in gym's ``cartpole.py``): Euler integration
at 0.02 s, force ±10 N, termination at |x| > 2.4 m or |theta| > 12 deg.
Table I: four floating point observations, one binary action.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Tuple

import numpy as np

from .base import Environment
from .spaces import Box, Discrete


class CartPoleEnv(Environment):
    GRAVITY = 9.8
    MASS_CART = 1.0
    MASS_POLE = 0.1
    TOTAL_MASS = MASS_CART + MASS_POLE
    LENGTH = 0.5  # half the pole's length
    POLE_MASS_LENGTH = MASS_POLE * LENGTH
    FORCE_MAG = 10.0
    TAU = 0.02  # seconds between state updates
    REWARD_PER_STEP = 1.0

    X_THRESHOLD = 2.4
    THETA_THRESHOLD = 12 * 2 * math.pi / 360

    TUNABLE_PARAMS = {
        "gravity": GRAVITY,
        "masscart": MASS_CART,
        "masspole": MASS_POLE,
        "length": LENGTH,
        "force_mag": FORCE_MAG,
        "tau": TAU,
        "x_threshold": X_THRESHOLD,
        "reward_per_step": REWARD_PER_STEP,
    }

    observation_space = Box(
        low=[-4.8, -np.inf, -0.418, -np.inf],
        high=[4.8, np.inf, 0.418, np.inf],
    )
    action_space = Discrete(2)
    max_episode_steps = 200
    #: Paper (Table I): balance "for 100 consecutive time steps" wins.
    solve_threshold = 100.0

    def _apply_params(self) -> None:
        p = self.params
        self.GRAVITY = p["gravity"]
        self.MASS_CART = p["masscart"]
        self.MASS_POLE = p["masspole"]
        self.TOTAL_MASS = self.MASS_CART + self.MASS_POLE
        self.LENGTH = p["length"]
        self.POLE_MASS_LENGTH = self.MASS_POLE * self.LENGTH
        self.FORCE_MAG = p["force_mag"]
        self.TAU = p["tau"]
        self.X_THRESHOLD = p["x_threshold"]
        self.REWARD_PER_STEP = p["reward_per_step"]

    def _reset(self) -> np.ndarray:
        self.state = np.array(
            [self.rng.uniform(-0.05, 0.05) for _ in range(4)], dtype=np.float64
        )
        return self.state.copy()

    def _step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        x, x_dot, theta, theta_dot = self.state
        force = self.FORCE_MAG if action == 1 else -self.FORCE_MAG
        cos_theta = math.cos(theta)
        sin_theta = math.sin(theta)
        temp = (
            force + self.POLE_MASS_LENGTH * theta_dot ** 2 * sin_theta
        ) / self.TOTAL_MASS
        theta_acc = (self.GRAVITY * sin_theta - cos_theta * temp) / (
            self.LENGTH * (4.0 / 3.0 - self.MASS_POLE * cos_theta ** 2 / self.TOTAL_MASS)
        )
        x_acc = temp - self.POLE_MASS_LENGTH * theta_acc * cos_theta / self.TOTAL_MASS

        x += self.TAU * x_dot
        x_dot += self.TAU * x_acc
        theta += self.TAU * theta_dot
        theta_dot += self.TAU * theta_acc
        self.state = np.array([x, x_dot, theta, theta_dot], dtype=np.float64)

        done = bool(
            x < -self.X_THRESHOLD
            or x > self.X_THRESHOLD
            or theta < -self.THETA_THRESHOLD
            or theta > self.THETA_THRESHOLD
        )
        reward = self.REWARD_PER_STEP
        return self.state.copy(), reward, done, {}
