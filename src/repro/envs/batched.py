"""Batched environments: many episode lanes stepped per call.

The paper's SoC runs "n Environment Instances" against the inference
engine (Fig. 6); the software mirror of that block is a *batched*
environment that advances every in-flight episode in lockstep, so the
vectorized inference path (:mod:`repro.neat.compiled`) can feed one
packed observation matrix per step instead of one Python call per lane.

Two implementations ship:

* :class:`LockstepEnvs` — the generic fallback: wraps one scalar
  :class:`repro.envs.Environment` per lane and steps each in Python.
  Works for every registered environment; bit-identical to the scalar
  path by construction.
* Vectorized ports (:class:`VectorizedCartPole`,
  :class:`VectorizedMountainCar`) — the whole physics update is numpy
  over the lane axis.  The arithmetic replays the scalar ``_step``
  operation-for-operation (numpy elementwise float64 ops are IEEE-754
  identical to Python float ops, and this platform's ``np.cos``/``np.sin``
  agree bitwise with ``math.cos``/``math.sin``), so trajectories match
  the scalar environments exactly.

A lane is one episode: it is seeded once via :meth:`BatchedEnv.start`
and never restarts.  Finished lanes are dropped with :meth:`prune` so
late steps only pay for live episodes.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple, Type

import numpy as np

from .base import Environment
from .cartpole import CartPoleEnv
from .mountain_car import MountainCarEnv
from .registry import make
from .seeding import make_rng
from .spaces import Box, Discrete, MultiBinary

#: step() result: (observations, rewards, dones) for the live lanes.
BatchedStep = Tuple[np.ndarray, np.ndarray, np.ndarray]


class BatchedTemplateError(TypeError):
    """A scalar template a vectorized port cannot replay bit-exactly.

    Raised when a wrapped or subclassed environment is offered as the
    template for a numpy physics port: the port replays the *class*
    dynamics, so anything that intercepts ``step``/``reset`` (perturbation
    wrappers, custom subclasses) must run on the lockstep fallback
    instead.  :func:`make_batched` catches this and falls back.
    """


class BatchedEnv:
    """Interface: n episode lanes advanced in lockstep.

    ``start(seeds)`` opens one lane per seed and returns the stacked
    initial observations; ``step(actions)`` advances every live lane;
    ``prune(keep)`` drops finished lanes (boolean mask over the current
    live lanes, in order).  Spaces and the step limit mirror the scalar
    environment so action translation code is shared.
    """

    #: the scalar environment class this batches (set by subclasses)
    env_id: str

    observation_space = None
    action_space = None
    max_episode_steps: int = 1000

    def start(self, seeds: Sequence[int]) -> np.ndarray:
        raise NotImplementedError

    def step(self, actions: np.ndarray) -> BatchedStep:
        raise NotImplementedError

    def prune(self, keep: np.ndarray) -> None:
        raise NotImplementedError

    @property
    def num_lanes(self) -> int:
        raise NotImplementedError


class LockstepEnvs(BatchedEnv):
    """Generic fallback: one scalar environment per lane, stepped in Python.

    No numpy win on the physics, but the inference side still batches, and
    every registered environment works unmodified.  Environments are kept
    across generations (``start`` re-seeds them) to avoid rebuild cost.
    """

    def __init__(
        self,
        env_id: str,
        factory: Callable[[], Environment] = None,
    ) -> None:
        self.env_id = env_id
        self._make = factory if factory is not None else (lambda: make(env_id))
        template = self._make()
        self.observation_space = template.observation_space
        self.action_space = template.action_space
        self.max_episode_steps = template.max_episode_steps
        self._envs: List[Environment] = [template]
        self._live: List[Environment] = []

    def start(self, seeds: Sequence[int]) -> np.ndarray:
        while len(self._envs) < len(seeds):
            self._envs.append(self._make())
        self._live = self._envs[: len(seeds)]
        obs = np.empty((len(seeds), self.observation_space.flat_dim))
        for i, (env, seed) in enumerate(zip(self._live, seeds)):
            env.seed(seed)
            obs[i] = env.reset().ravel()
        return obs

    def step(self, actions) -> BatchedStep:
        n = len(self._live)
        obs = np.empty((n, self.observation_space.flat_dim))
        rewards = np.empty(n)
        dones = np.empty(n, dtype=bool)
        space = self.action_space
        for i, env in enumerate(self._live):
            action = actions[i]
            if isinstance(space, Discrete):
                action = int(action)
            elif isinstance(space, MultiBinary):
                action = [int(a) for a in action]
            o, r, d, _info = env.step(action)
            obs[i] = o.ravel()
            rewards[i] = r
            dones[i] = d
        return obs, rewards, dones

    def prune(self, keep: np.ndarray) -> None:
        self._live = [env for env, k in zip(self._live, keep) if k]

    @property
    def num_lanes(self) -> int:
        return len(self._live)


class _StateMatrixEnv(BatchedEnv):
    """Base for numpy-state ports: per-lane state rows, lockstep physics."""

    #: scalar class mirrored (spaces / step limit / state sampler source)
    scalar_cls: Type[Environment] = Environment

    def __init__(self, env_id: str, template: Environment = None) -> None:
        self.env_id = env_id
        if template is None:
            template = self.scalar_cls()
        elif type(template) is not self.scalar_cls:
            # A wrapper or subclass intercepts step()/reset(); the numpy
            # physics below would silently drop that behaviour.  Refuse,
            # so make_batched() routes to the lockstep fallback.
            raise BatchedTemplateError(
                f"{type(self).__name__} replays {self.scalar_cls.__name__} "
                f"dynamics exactly; cannot batch {type(template).__name__}"
            )
        #: physics constants are read off the template *instance*, so a
        #: parameterised (but unwrapped) scalar env vectorizes correctly.
        self._template = template
        self.observation_space = template.observation_space
        self.action_space = template.action_space
        self.max_episode_steps = template.max_episode_steps
        self.state = np.empty((0, self.observation_space.flat_dim))
        self._elapsed = 0

    def start(self, seeds: Sequence[int]) -> np.ndarray:
        rows = [self._initial_state(make_rng(seed)) for seed in seeds]
        self.state = np.array(rows, dtype=np.float64).reshape(
            len(rows), self.observation_space.flat_dim
        )
        self._elapsed = 0
        return self.state.copy()

    def step(self, actions) -> BatchedStep:
        state, rewards, dones = self._step_batch(self.state, np.asarray(actions))
        self.state = state
        self._elapsed += 1
        if self._elapsed >= self.max_episode_steps:
            # gym TimeLimit semantics: every lane still alive is truncated.
            dones = np.ones_like(dones)
        # _step_batch builds a fresh state matrix every call, so the
        # returned observations never alias a buffer that later mutates.
        return state, rewards, dones

    def prune(self, keep: np.ndarray) -> None:
        self.state = self.state[keep]

    @property
    def num_lanes(self) -> int:
        return len(self.state)

    # -- subclass hooks ---------------------------------------------------

    def _initial_state(self, rng) -> List[float]:
        raise NotImplementedError

    def _step_batch(
        self, state: np.ndarray, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError


class VectorizedCartPole(_StateMatrixEnv):
    """CartPole physics over the lane axis; exact replay of the scalar port."""

    scalar_cls = CartPoleEnv

    def _initial_state(self, rng) -> List[float]:
        return [rng.uniform(-0.05, 0.05) for _ in range(4)]

    def _step_batch(self, state, actions):
        c = self._template
        x, x_dot = state[:, 0], state[:, 1]
        theta, theta_dot = state[:, 2], state[:, 3]
        force = np.where(actions == 1, c.FORCE_MAG, -c.FORCE_MAG)
        cos_theta = np.cos(theta)
        sin_theta = np.sin(theta)
        temp = (
            force + c.POLE_MASS_LENGTH * theta_dot ** 2 * sin_theta
        ) / c.TOTAL_MASS
        theta_acc = (c.GRAVITY * sin_theta - cos_theta * temp) / (
            c.LENGTH * (4.0 / 3.0 - c.MASS_POLE * cos_theta ** 2 / c.TOTAL_MASS)
        )
        x_acc = temp - c.POLE_MASS_LENGTH * theta_acc * cos_theta / c.TOTAL_MASS
        x = x + c.TAU * x_dot
        x_dot = x_dot + c.TAU * x_acc
        theta = theta + c.TAU * theta_dot
        theta_dot = theta_dot + c.TAU * theta_acc
        next_state = np.stack([x, x_dot, theta, theta_dot], axis=1)
        done = (
            (x < -c.X_THRESHOLD)
            | (x > c.X_THRESHOLD)
            | (theta < -c.THETA_THRESHOLD)
            | (theta > c.THETA_THRESHOLD)
        )
        return next_state, np.full(len(x), c.REWARD_PER_STEP), done


class VectorizedMountainCar(_StateMatrixEnv):
    """MountainCar physics over the lane axis; exact replay of the scalar port."""

    scalar_cls = MountainCarEnv

    def _initial_state(self, rng) -> List[float]:
        return [rng.uniform(-0.6, -0.4), 0.0]

    def _step_batch(self, state, actions):
        c = self._template
        position, velocity = state[:, 0], state[:, 1]
        # Parenthesised exactly like the scalar `velocity += a + b`:
        # float addition is not associative, and bitwise replay is the
        # contract.
        velocity = velocity + (
            (actions - 1) * c.FORCE + np.cos(3 * position) * (-c.GRAVITY)
        )
        velocity = np.clip(velocity, -c.MAX_SPEED, c.MAX_SPEED)
        position = position + velocity
        position = np.clip(position, c.MIN_POSITION, c.MAX_POSITION)
        velocity = np.where((position <= c.MIN_POSITION) & (velocity < 0), 0.0, velocity)
        next_state = np.stack([position, velocity], axis=1)
        done = position >= c.GOAL_POSITION
        return next_state, np.full(len(position), c.REWARD_PER_STEP), done


#: Environment ids with a numpy physics port; everything else falls back
#: to :class:`LockstepEnvs`.  Extend via :func:`register_batched`.
_BATCHED_REGISTRY: Dict[str, Callable[[str], BatchedEnv]] = {
    "CartPole-v0": VectorizedCartPole,
    "MountainCar-v0": VectorizedMountainCar,
}


def register_batched(env_id: str, factory: Callable[[str], BatchedEnv]) -> None:
    """Register a vectorized port for an environment id."""
    _BATCHED_REGISTRY[env_id] = factory


def has_vectorized_env(env_id: str) -> bool:
    """Whether ``env_id`` steps its physics in numpy (vs the lockstep fallback)."""
    return env_id in _BATCHED_REGISTRY


def make_batched(
    env_id: str, factory: Callable[[], Environment] = None
) -> BatchedEnv:
    """A batched environment for ``env_id``: numpy port if one exists,
    else the generic per-lane lockstep fallback.

    ``factory`` (optional) builds the scalar environments — the hook for
    parameterised/wrapped scenario envs.  A vectorized port accepts the
    factory's env as its template only when it is *exactly* the scalar
    class the numpy physics replays (parameter overrides ride along via
    instance attributes); a wrapped or subclassed env raises
    :class:`BatchedTemplateError` and drops to :class:`LockstepEnvs`,
    which steps the factory's envs directly and is therefore
    bit-identical to the scalar path by construction.
    """
    vectorized = _BATCHED_REGISTRY.get(env_id)
    if vectorized is not None:
        if factory is None:
            return vectorized(env_id)
        try:
            return vectorized(env_id, template=factory())
        except (BatchedTemplateError, TypeError):
            pass  # third-party ports without template support also fall back
    return LockstepEnvs(env_id, factory=factory)
