"""Observation/action space descriptions (gym-compatible subset).

Table I of the paper describes each environment by its observation and
action spaces; these classes carry exactly that metadata plus sampling and
containment checks.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

import numpy as np


class Space:
    """Base class: a set of possible observations or actions."""

    def sample(self, rng: random.Random):
        raise NotImplementedError

    def contains(self, value) -> bool:
        raise NotImplementedError

    @property
    def flat_dim(self) -> int:
        """Size of the flattened vector a NEAT network sees."""
        raise NotImplementedError


class Discrete(Space):
    """Integers ``0 .. n-1`` (button presses, thruster selection, ...)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("Discrete space needs n >= 1")
        self.n = n

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.n)

    def contains(self, value) -> bool:
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            return False
        return ivalue == value and 0 <= ivalue < self.n

    @property
    def flat_dim(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Discrete) and other.n == self.n

    def __repr__(self) -> str:
        return f"Discrete({self.n})"


class Box(Space):
    """A box in R^n with per-dimension bounds."""

    def __init__(
        self,
        low: Union[float, Sequence[float]],
        high: Union[float, Sequence[float]],
        shape: Optional[Sequence[int]] = None,
    ) -> None:
        if shape is None:
            low_arr = np.asarray(low, dtype=np.float64)
            high_arr = np.asarray(high, dtype=np.float64)
            if low_arr.shape != high_arr.shape:
                raise ValueError("low/high shape mismatch")
            shape = low_arr.shape
        else:
            shape = tuple(shape)
            low_arr = np.full(shape, low, dtype=np.float64)
            high_arr = np.full(shape, high, dtype=np.float64)
        if np.any(low_arr > high_arr):
            raise ValueError("Box requires low <= high elementwise")
        self.low = low_arr
        self.high = high_arr
        self.shape = tuple(shape)

    def sample(self, rng: random.Random) -> np.ndarray:
        flat_low = self.low.ravel()
        flat_high = self.high.ravel()
        out = np.empty(flat_low.shape, dtype=np.float64)
        for i, (lo, hi) in enumerate(zip(flat_low, flat_high)):
            lo_s = max(lo, -1e6)
            hi_s = min(hi, 1e6)
            out[i] = rng.uniform(lo_s, hi_s)
        return out.reshape(self.shape)

    def contains(self, value) -> bool:
        arr = np.asarray(value, dtype=np.float64)
        if arr.shape != self.shape:
            return False
        return bool(np.all(arr >= self.low - 1e-9) and np.all(arr <= self.high + 1e-9))

    @property
    def flat_dim(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Box)
            and other.shape == self.shape
            and np.allclose(other.low, self.low)
            and np.allclose(other.high, self.high)
        )

    def __repr__(self) -> str:
        return f"Box(shape={self.shape})"


class MultiBinary(Space):
    """n independent binary values (e.g. the 128-byte RAM seen as bits)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("MultiBinary space needs n >= 1")
        self.n = n

    def sample(self, rng: random.Random) -> List[int]:
        return [rng.randrange(2) for _ in range(self.n)]

    def contains(self, value) -> bool:
        try:
            values = list(value)
        except TypeError:
            return False
        return len(values) == self.n and all(v in (0, 1) for v in values)

    @property
    def flat_dim(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MultiBinary) and other.n == self.n

    def __repr__(self) -> str:
        return f"MultiBinary({self.n})"
