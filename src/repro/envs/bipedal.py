"""BipedalWalker-v2 substitute: evolve locomotion for a two-legged robot.

Gym's original is a Box2D contact simulation; this replacement keeps the
interface of Table I — a 24-dimensional observation (hull state, joint
angles/speeds, leg contacts, 10 lidar rangefinder slots) and a
4-dimensional continuous action (hip/knee torques for each leg) — on top
of a reduced-order gait model: torques drive joint angles, leg phase
determines ground contact, and forward hull speed follows stance-leg
motion.  Reward matches gym's structure (forward progress minus torque
cost, -100 on a fall), which is what evolution climbs.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Tuple

import numpy as np

from .base import Environment
from .spaces import Box


class BipedalWalkerEnv(Environment):
    DT = 0.05
    JOINT_GAIN = 3.0
    JOINT_DAMPING = 0.2
    HULL_DAMPING = 0.12
    SPEED_GAIN = 0.9
    TILT_GAIN = 0.35
    FALL_ANGLE = 1.2

    observation_space = Box(low=[-np.inf] * 24, high=[np.inf] * 24)
    action_space = Box(low=[-1.0] * 4, high=[1.0] * 4)
    max_episode_steps = 400
    solve_threshold = 100.0

    def _reset(self) -> np.ndarray:
        self.hull_angle = self.rng.uniform(-0.05, 0.05)
        self.hull_angular_velocity = 0.0
        self.hull_vx = 0.0
        self.hull_vy = 0.0
        self.position = 0.0
        # joints: [hip1, knee1, hip2, knee2]
        self.joint_angles = np.array(
            [self.rng.uniform(-0.1, 0.1) for _ in range(4)], dtype=np.float64
        )
        self.joint_speeds = np.zeros(4, dtype=np.float64)
        self.phase = 0.0
        return self._observation()

    def _contacts(self) -> Tuple[float, float]:
        """Alternating stance contacts driven by the gait phase."""
        leg1 = 1.0 if math.sin(self.phase) >= 0.0 else 0.0
        return leg1, 1.0 - leg1

    def _lidar(self) -> np.ndarray:
        # Flat terrain: rangefinder returns depend only on hull attitude.
        angles = np.linspace(0.0, math.pi / 2, 10)
        heights = 1.0 / np.maximum(0.2, np.cos(angles - self.hull_angle))
        return np.clip(heights / 5.0, 0.0, 1.0)

    def _observation(self) -> np.ndarray:
        c1, c2 = self._contacts()
        return np.concatenate(
            [
                [
                    self.hull_angle,
                    self.hull_angular_velocity,
                    self.hull_vx,
                    self.hull_vy,
                ],
                [
                    self.joint_angles[0],
                    self.joint_speeds[0],
                    self.joint_angles[1],
                    self.joint_speeds[1],
                    c1,
                    self.joint_angles[2],
                    self.joint_speeds[2],
                    self.joint_angles[3],
                    self.joint_speeds[3],
                    c2,
                ],
                self._lidar(),
            ]
        ).astype(np.float64)

    def _step(self, action) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        torques = np.clip(np.asarray(action, dtype=np.float64), -1.0, 1.0)

        # Joint dynamics: torque-driven second-order response.
        self.joint_speeds += self.DT * (
            self.JOINT_GAIN * torques - self.JOINT_DAMPING * self.joint_speeds
            - 0.5 * self.joint_angles
        )
        self.joint_angles += self.DT * self.joint_speeds
        self.joint_angles = np.clip(self.joint_angles, -math.pi / 2, math.pi / 2)

        # Stance-leg hip motion propels the hull; asymmetric thrust tilts it.
        c1, c2 = self._contacts()
        drive = c1 * (-self.joint_speeds[0]) + c2 * (-self.joint_speeds[2])
        self.hull_vx += self.DT * (
            self.SPEED_GAIN * drive - self.HULL_DAMPING * self.hull_vx
        )
        tilt = self.TILT_GAIN * (
            c1 * self.joint_angles[0] - c2 * self.joint_angles[2]
        )
        self.hull_angular_velocity += self.DT * (
            tilt - 0.4 * self.hull_angle - 0.3 * self.hull_angular_velocity
        )
        self.hull_angle += self.DT * self.hull_angular_velocity
        self.hull_vy = 0.05 * math.sin(self.phase) * abs(self.hull_vx)
        self.position += self.DT * self.hull_vx
        self.phase += self.DT * (2.0 + 2.0 * max(0.0, self.hull_vx))

        progress = self.DT * self.hull_vx
        torque_cost = 0.00035 * float(np.sum(np.abs(torques)))
        reward = 130.0 * progress / 4.0 - torque_cost
        reward -= 0.001 * abs(self.hull_angle)

        done = False
        if abs(self.hull_angle) > self.FALL_ANGLE:
            done = True
            reward = -100.0
        if self.position >= 10.0:
            done = True
        return self._observation(), reward, done, {}
