"""Synthetic Atari-RAM environments.

The paper's Atari workloads (AirRaid-ram, Alien-ram, Asterix-ram,
Amidar-ram) observe the 128-byte console RAM and emit one button press per
step (Table I).  Real Atari ROMs/emulators are unavailable offline, so
each class below is a small self-contained arcade kernel whose complete
game state is packed into a 128-byte RAM image every step.

What the architecture study needs from these workloads — and what the
kernels preserve — is their *scale*: 128-input genomes push generation
gene counts into the ~10^5 range (Fig. 4b) and reproduction op counts into
the hundred-thousands class (Fig. 5a), an order of magnitude above the
classic-control suite.  Scoring is dense enough that NEAT's fitness signal
is climbable.

Observations are the RAM bytes scaled to [0, 1] (raw byte / 255).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from .base import Environment
from .spaces import Box, Discrete

RAM_SIZE = 128

# Minimal Atari-style action set shared by all four kernels.
NOOP, FIRE, UP, RIGHT, LEFT, DOWN = range(6)


class AtariRAMEnv(Environment):
    """Base class: subclasses implement the game kernel and RAM packing."""

    observation_space = Box(low=[0.0] * RAM_SIZE, high=[1.0] * RAM_SIZE)
    action_space = Discrete(6)
    max_episode_steps = 300
    solve_threshold = 50.0

    def _reset(self) -> np.ndarray:
        self.score = 0.0
        self._reset_game()
        return self._ram_observation()

    def _step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        reward, done = self._step_game(action)
        self.score += reward
        return self._ram_observation(), reward, done, {}

    def _ram_observation(self) -> np.ndarray:
        ram = np.zeros(RAM_SIZE, dtype=np.float64)
        payload = self._ram_bytes()
        if len(payload) > RAM_SIZE:
            raise ValueError(f"{self.name}: RAM payload exceeds 128 bytes")
        for i, byte in enumerate(payload):
            ram[i] = (int(byte) & 0xFF) / 255.0
        return ram

    # -- subclass hooks ----------------------------------------------------

    def _reset_game(self) -> None:
        raise NotImplementedError

    def _step_game(self, action: int) -> Tuple[float, bool]:
        raise NotImplementedError

    def _ram_bytes(self) -> List[int]:
        raise NotImplementedError


class AirRaidRamEnv(AtariRAMEnv):
    """Fixed gun at the bottom, descending raiders: shoot them down.

    Player slides on a 16-cell rail; up to 8 raiders descend from random
    columns.  FIRE launches a bullet up the player's column; a hit scores.
    A raider reaching the ground costs a life (3 lives).
    """

    WIDTH = 16
    HEIGHT = 12
    MAX_RAIDERS = 8

    def _reset_game(self) -> None:
        self.player_x = self.WIDTH // 2
        self.lives = 3
        self.bullet: Tuple[int, int] = (-1, -1)  # (x, y), -1 = inactive
        self.raiders: List[List[int]] = []
        self.spawn_cooldown = 0

    def _step_game(self, action: int) -> Tuple[float, bool]:
        reward = 0.0
        if action == LEFT:
            self.player_x = max(0, self.player_x - 1)
        elif action == RIGHT:
            self.player_x = min(self.WIDTH - 1, self.player_x + 1)
        elif action == FIRE and self.bullet[1] < 0:
            self.bullet = (self.player_x, self.HEIGHT - 2)

        # Advance the bullet two cells per frame.
        if self.bullet[1] >= 0:
            bx, by = self.bullet
            by -= 2
            self.bullet = (bx, by) if by >= 0 else (-1, -1)

        # Spawn raiders.
        if self.spawn_cooldown == 0 and len(self.raiders) < self.MAX_RAIDERS:
            self.raiders.append([self.rng.randrange(self.WIDTH), 0])
            self.spawn_cooldown = 3
        else:
            self.spawn_cooldown = max(0, self.spawn_cooldown - 1)

        # Advance raiders, check bullet collisions and ground impacts.
        survivors: List[List[int]] = []
        for raider in self.raiders:
            raider[1] += 1
            bx, by = self.bullet
            if bx == raider[0] and by in (raider[1], raider[1] - 1):
                reward += 5.0
                self.bullet = (-1, -1)
                continue
            if raider[1] >= self.HEIGHT - 1:
                self.lives -= 1
                continue
            survivors.append(raider)
        self.raiders = survivors
        return reward, self.lives <= 0

    def _ram_bytes(self) -> List[int]:
        ram = [self.player_x, self.lives, self.bullet[0] & 0xFF, self.bullet[1] & 0xFF,
               len(self.raiders), int(self.score) & 0xFF]
        for raider in self.raiders:
            ram.extend([raider[0], raider[1]])
        return ram


class AlienRamEnv(AtariRAMEnv):
    """Collect dots in a corridor grid while an alien chases you."""

    WIDTH = 12
    HEIGHT = 10

    def _reset_game(self) -> None:
        self.px, self.py = 0, 0
        self.ax, self.ay = self.WIDTH - 1, self.HEIGHT - 1
        self.dots = {
            (x, y)
            for x in range(0, self.WIDTH, 2)
            for y in range(0, self.HEIGHT, 2)
        }
        self.flee_timer = 0

    def _step_game(self, action: int) -> Tuple[float, bool]:
        reward = 0.0
        if action == UP:
            self.py = max(0, self.py - 1)
        elif action == DOWN:
            self.py = min(self.HEIGHT - 1, self.py + 1)
        elif action == LEFT:
            self.px = max(0, self.px - 1)
        elif action == RIGHT:
            self.px = min(self.WIDTH - 1, self.px + 1)
        elif action == FIRE and self.flee_timer == 0:
            self.flee_timer = 8  # flamethrower scares the alien off

        if (self.px, self.py) in self.dots:
            self.dots.discard((self.px, self.py))
            reward += 2.0

        # Alien moves greedily towards (or away from) the player every frame.
        direction = -1 if self.flee_timer > 0 else 1
        if self.rng.random() < 0.8:
            if abs(self.ax - self.px) >= abs(self.ay - self.py):
                self.ax += direction if self.px > self.ax else -direction
            else:
                self.ay += direction if self.py > self.ay else -direction
            self.ax = min(self.WIDTH - 1, max(0, self.ax))
            self.ay = min(self.HEIGHT - 1, max(0, self.ay))
        self.flee_timer = max(0, self.flee_timer - 1)

        if (self.ax, self.ay) == (self.px, self.py):
            return reward - 10.0, True
        if not self.dots:
            return reward + 20.0, True
        return reward, False

    def _ram_bytes(self) -> List[int]:
        ram = [self.px, self.py, self.ax, self.ay, self.flee_timer,
               len(self.dots), int(self.score) & 0xFF]
        # Bitmap of remaining dots (6x5 coarse grid -> 30 bits in 4 bytes).
        bitmap = 0
        for i, (x, y) in enumerate(sorted(self.dots)):
            bitmap |= 1 << (i % 30)
        ram.extend([(bitmap >> (8 * i)) & 0xFF for i in range(4)])
        dot_list = sorted(self.dots)[:40]
        for x, y in dot_list:
            ram.append(x * 16 + y)
        return ram


class AsterixRamEnv(AtariRAMEnv):
    """Move between lanes collecting scrolling bonuses, dodging lyres."""

    LANES = 8
    WIDTH = 16

    def _reset_game(self) -> None:
        self.lane = self.LANES // 2
        self.objects: List[List[int]] = []  # [x, lane, kind] kind 1=bonus 0=lyre
        self.lives = 3

    def _step_game(self, action: int) -> Tuple[float, bool]:
        reward = 0.0
        if action == UP:
            self.lane = max(0, self.lane - 1)
        elif action == DOWN:
            self.lane = min(self.LANES - 1, self.lane + 1)

        if self.rng.random() < 0.5 and len(self.objects) < 10:
            kind = 1 if self.rng.random() < 0.6 else 0
            self.objects.append([self.WIDTH - 1, self.rng.randrange(self.LANES), kind])

        survivors: List[List[int]] = []
        for obj in self.objects:
            obj[0] -= 1
            if obj[0] == 0 and obj[1] == self.lane:
                if obj[2] == 1:
                    reward += 3.0
                else:
                    self.lives -= 1
                continue
            if obj[0] > 0:
                survivors.append(obj)
        self.objects = survivors
        return reward, self.lives <= 0

    def _ram_bytes(self) -> List[int]:
        ram = [self.lane, self.lives, len(self.objects), int(self.score) & 0xFF]
        for x, lane, kind in self.objects:
            ram.extend([x, lane * 2 + kind])
        return ram


class AmidarRamEnv(AtariRAMEnv):
    """Paint the edges of a lattice while evading a patrolling tracer."""

    GRID = 6  # 6x6 vertices

    def _reset_game(self) -> None:
        self.px, self.py = 0, 0
        self.tx, self.ty = self.GRID - 1, self.GRID - 1
        self.painted: set = set()
        self.total_edges = 2 * self.GRID * (self.GRID - 1)

    @staticmethod
    def _edge(a: Tuple[int, int], b: Tuple[int, int]) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted((a, b)))

    def _move(self, x: int, y: int, action: int) -> Tuple[int, int]:
        if action == UP:
            y = max(0, y - 1)
        elif action == DOWN:
            y = min(self.GRID - 1, y + 1)
        elif action == LEFT:
            x = max(0, x - 1)
        elif action == RIGHT:
            x = min(self.GRID - 1, x + 1)
        return x, y

    def _step_game(self, action: int) -> Tuple[float, bool]:
        reward = 0.0
        old = (self.px, self.py)
        self.px, self.py = self._move(self.px, self.py, action)
        new = (self.px, self.py)
        if new != old:
            edge = self._edge(old, new)
            if edge not in self.painted:
                self.painted.add(edge)
                reward += 1.0

        # Tracer patrols: mostly chases, sometimes wanders.
        if self.rng.random() < 0.7:
            if abs(self.tx - self.px) >= abs(self.ty - self.py):
                chase = RIGHT if self.px > self.tx else LEFT
            else:
                chase = DOWN if self.py > self.ty else UP
        else:
            chase = self.rng.choice((UP, DOWN, LEFT, RIGHT))
        self.tx, self.ty = self._move(self.tx, self.ty, chase)

        if (self.tx, self.ty) == (self.px, self.py):
            return reward - 10.0, True
        if len(self.painted) == self.total_edges:
            return reward + 30.0, True
        return reward, False

    def _ram_bytes(self) -> List[int]:
        ram = [self.px, self.py, self.tx, self.ty,
               len(self.painted), int(self.score) & 0xFF]
        bits = 0
        edges = sorted(self.painted)
        for i, _ in enumerate(edges):
            bits |= 1 << (i % 120)
        ram.extend([(bits >> (8 * i)) & 0xFF for i in range(15)])
        return ram
