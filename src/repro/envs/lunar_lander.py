"""LunarLander-v2 substitute: land a module on a pad using four thrusters.

The gym original is built on Box2D, which is unavailable offline, so this
is a from-scratch 2-D rigid-body simulation with the same interface
(Table I: eight floating point observations, one integer action < 4
"indicating the thruster to fire") and the same shaped-reward structure as
gym's implementation: progress towards the pad, penalties for speed, tilt
and fuel, +/-100 terminal bonus, +10 per leg contact.

For the purposes of the paper's study the environment is a black-box
fitness generator; what matters is its observation/action dimensionality
and a smoothly climbable reward, both of which are preserved.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Tuple

import numpy as np

from .base import Environment
from .spaces import Box, Discrete


class LunarLanderEnv(Environment):
    DT = 0.02
    GRAVITY = -1.62  # lunar gravity, m/s^2
    MAIN_ENGINE_ACCEL = 3.0
    SIDE_ENGINE_ACCEL = 1.0
    SIDE_ENGINE_TORQUE = 1.2
    ANGULAR_DAMPING = 0.05
    LEG_SPREAD = 0.2  # half-width of the landing legs, world units

    observation_space = Box(low=[-np.inf] * 8, high=[np.inf] * 8)
    action_space = Discrete(4)  # 0: noop, 1: left thruster, 2: main, 3: right
    max_episode_steps = 400
    #: Gym considers LunarLander solved at an average return of 200.
    solve_threshold = 200.0

    def _reset(self) -> np.ndarray:
        self.x = self.rng.uniform(-0.3, 0.3)
        self.y = 1.4
        self.vx = self.rng.uniform(-0.2, 0.2)
        self.vy = 0.0
        self.angle = self.rng.uniform(-0.05, 0.05)
        self.angular_velocity = 0.0
        self.left_leg_contact = False
        self.right_leg_contact = False
        self._prev_shaping = self._shaping()
        return self._observation()

    def _observation(self) -> np.ndarray:
        return np.array(
            [
                self.x,
                self.y,
                self.vx,
                self.vy,
                self.angle,
                self.angular_velocity,
                1.0 if self.left_leg_contact else 0.0,
                1.0 if self.right_leg_contact else 0.0,
            ],
            dtype=np.float64,
        )

    def _shaping(self) -> float:
        """Potential function matching gym's shaping terms."""
        return (
            -100.0 * math.sqrt(self.x ** 2 + self.y ** 2)
            - 100.0 * math.sqrt(self.vx ** 2 + self.vy ** 2)
            - 100.0 * abs(self.angle)
            + 10.0 * (1.0 if self.left_leg_contact else 0.0)
            + 10.0 * (1.0 if self.right_leg_contact else 0.0)
        )

    def _leg_heights(self) -> Tuple[float, float]:
        """World-space heights of the two leg tips."""
        sin_a = math.sin(self.angle)
        left = self.y - self.LEG_SPREAD * sin_a
        right = self.y + self.LEG_SPREAD * sin_a
        return left, right

    def _step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        fuel_cost = 0.0
        ax = 0.0
        ay = self.GRAVITY
        torque = 0.0
        if action == 2:  # main engine: thrust along the lander's axis
            ax += -math.sin(self.angle) * self.MAIN_ENGINE_ACCEL
            ay += math.cos(self.angle) * self.MAIN_ENGINE_ACCEL
            fuel_cost = 0.30
        elif action == 1:  # left thruster pushes right, rotates +.
            ax += math.cos(self.angle) * self.SIDE_ENGINE_ACCEL
            torque += self.SIDE_ENGINE_TORQUE
            fuel_cost = 0.03
        elif action == 3:  # right thruster pushes left, rotates -.
            ax += -math.cos(self.angle) * self.SIDE_ENGINE_ACCEL
            torque -= self.SIDE_ENGINE_TORQUE
            fuel_cost = 0.03

        # Semi-implicit Euler integration of the rigid body.
        self.vx += ax * self.DT
        self.vy += ay * self.DT
        self.angular_velocity += torque * self.DT
        self.angular_velocity *= 1.0 - self.ANGULAR_DAMPING
        self.x += self.vx * self.DT
        self.y += self.vy * self.DT
        self.angle += self.angular_velocity * self.DT

        left_h, right_h = self._leg_heights()
        self.left_leg_contact = left_h <= 0.0
        self.right_leg_contact = right_h <= 0.0

        shaping = self._shaping()
        reward = shaping - self._prev_shaping
        self._prev_shaping = shaping
        reward -= fuel_cost

        done = False
        touched_down = self.left_leg_contact and self.right_leg_contact
        if touched_down or self.y <= 0.0:
            done = True
            soft = (
                abs(self.vy) < 0.5
                and abs(self.vx) < 0.5
                and abs(self.angle) < 0.3
                and abs(self.x) < 0.4
            )
            reward += 100.0 if (touched_down and soft) else -100.0
        elif abs(self.x) > 1.5 or self.y > 2.0:
            done = True
            reward -= 100.0
        return self._observation(), reward, done, {}
