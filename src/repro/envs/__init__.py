"""Environment substrate: gym-equivalent workloads from Table I."""

from .acrobot import AcrobotEnv
from .atari_ram import (
    AirRaidRamEnv,
    AlienRamEnv,
    AmidarRamEnv,
    AsterixRamEnv,
    AtariRAMEnv,
    RAM_SIZE,
)
from .base import Environment
from .batched import (
    BatchedEnv,
    BatchedTemplateError,
    LockstepEnvs,
    VectorizedCartPole,
    VectorizedMountainCar,
    has_vectorized_env,
    make_batched,
    register_batched,
)
from .bipedal import BipedalWalkerEnv
from .cartpole import CartPoleEnv
from .evaluate import (
    EpisodeResult,
    EvaluationTotals,
    FitnessEvaluator,
    action_from_outputs,
    actions_from_outputs_batch,
    run_episode,
    run_episodes_batched,
)
from .lunar_lander import LunarLanderEnv
from .mountain_car import MountainCarEnv
from .registry import (
    ATARI_SUITE,
    CANONICAL_IDS,
    CLASSIC_SUITE,
    EVALUATION_SUITE,
    UnknownEnvironmentError,
    available,
    make,
    register,
    unregister,
)
from .seeding import derive_seed, make_rng
from .spaces import Box, Discrete, MultiBinary, Space

__all__ = [
    "ATARI_SUITE",
    "AcrobotEnv",
    "AirRaidRamEnv",
    "AlienRamEnv",
    "AmidarRamEnv",
    "AsterixRamEnv",
    "AtariRAMEnv",
    "BatchedEnv",
    "BatchedTemplateError",
    "BipedalWalkerEnv",
    "Box",
    "CANONICAL_IDS",
    "CLASSIC_SUITE",
    "CartPoleEnv",
    "Discrete",
    "Environment",
    "EpisodeResult",
    "EvaluationTotals",
    "EVALUATION_SUITE",
    "FitnessEvaluator",
    "LockstepEnvs",
    "LunarLanderEnv",
    "MountainCarEnv",
    "MultiBinary",
    "RAM_SIZE",
    "Space",
    "UnknownEnvironmentError",
    "VectorizedCartPole",
    "VectorizedMountainCar",
    "action_from_outputs",
    "actions_from_outputs_batch",
    "available",
    "derive_seed",
    "has_vectorized_env",
    "make",
    "make_batched",
    "make_rng",
    "register",
    "register_batched",
    "run_episode",
    "run_episodes_batched",
    "unregister",
]
