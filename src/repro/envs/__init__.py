"""Environment substrate: gym-equivalent workloads from Table I."""

from .acrobot import AcrobotEnv
from .atari_ram import (
    AirRaidRamEnv,
    AlienRamEnv,
    AmidarRamEnv,
    AsterixRamEnv,
    AtariRAMEnv,
    RAM_SIZE,
)
from .base import Environment
from .bipedal import BipedalWalkerEnv
from .cartpole import CartPoleEnv
from .evaluate import (
    EpisodeResult,
    EvaluationTotals,
    FitnessEvaluator,
    action_from_outputs,
    run_episode,
)
from .lunar_lander import LunarLanderEnv
from .mountain_car import MountainCarEnv
from .registry import (
    ATARI_SUITE,
    CANONICAL_IDS,
    CLASSIC_SUITE,
    EVALUATION_SUITE,
    UnknownEnvironmentError,
    available,
    make,
    register,
)
from .seeding import derive_seed, make_rng
from .spaces import Box, Discrete, MultiBinary, Space

__all__ = [
    "ATARI_SUITE",
    "AcrobotEnv",
    "AirRaidRamEnv",
    "AlienRamEnv",
    "AmidarRamEnv",
    "AsterixRamEnv",
    "AtariRAMEnv",
    "BipedalWalkerEnv",
    "Box",
    "CANONICAL_IDS",
    "CLASSIC_SUITE",
    "CartPoleEnv",
    "Discrete",
    "Environment",
    "EpisodeResult",
    "EvaluationTotals",
    "EVALUATION_SUITE",
    "FitnessEvaluator",
    "LunarLanderEnv",
    "MountainCarEnv",
    "MultiBinary",
    "RAM_SIZE",
    "Space",
    "UnknownEnvironmentError",
    "action_from_outputs",
    "available",
    "derive_seed",
    "make",
    "make_rng",
    "register",
    "run_episode",
]
