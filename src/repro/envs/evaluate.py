"""Fitness evaluation: run genome phenotypes against an environment.

This is the software path of walkthrough steps 2-6 (Section IV-B): read
environment state, run inference, translate output activations to actions,
repeat until the episode completes, convert the cumulative reward into a
fitness value attached to the genome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..neat.config import NEATConfig
from ..neat.genome import Genome
from ..neat.network import FeedForwardNetwork
from .base import Environment
from .registry import make
from .seeding import episode_seed
from .spaces import Box, Discrete, MultiBinary


def action_from_outputs(outputs: Sequence[float], env: Environment):
    """Translate network output activations into an environment action.

    Discrete spaces take the argmax output unit; Box spaces clip the raw
    outputs into the action bounds (step 4: "output activations ... are
    translated as actions").

    Tie-breaking is part of the contract: when several output units share
    the maximum activation, the *lowest-index* unit wins.  This keeps the
    scalar, vectorized and hardware inference paths action-identical on
    tied outputs instead of depending on whichever argmax an evaluation
    backend happens to use.
    """
    space = env.action_space
    if isinstance(space, Discrete):
        if len(outputs) == 1:
            # Single-output binary convention for 2-action spaces.
            if space.n == 2:
                return int(outputs[0] > 0.5 if 0.0 <= outputs[0] <= 1.0 else outputs[0] > 0.0)
            scaled = int(abs(outputs[0]) * space.n) % space.n
            return scaled
        head = outputs[: space.n]
        best = 0
        for i in range(1, len(head)):
            if head[i] > head[best]:  # strict: ties keep the lowest index
                best = i
        return best
    if isinstance(space, Box):
        arr = np.asarray(outputs[: space.flat_dim], dtype=np.float64)
        if arr.size < space.flat_dim:
            # Zero-fill missing dimensions (clipped into bounds below) so a
            # network with fewer outputs than the action space still emits a
            # full, in-bounds action instead of a silently short one.
            arr = np.pad(arr, (0, space.flat_dim - arr.size))
        return np.clip(arr, space.low.ravel(), space.high.ravel())
    if isinstance(space, MultiBinary):
        return [1 if o > 0.5 else 0 for o in outputs[: space.n]]
    raise TypeError(f"unsupported action space {space!r}")


def actions_from_outputs_batch(outputs: np.ndarray, space) -> np.ndarray:
    """Vectorized :func:`action_from_outputs` over a lane axis.

    ``outputs`` is ``(lanes, num_outputs)``; the result holds one action
    per row with semantics identical to the scalar translator, including
    lowest-index tie-breaking for Discrete argmax.  Discrete returns an
    int array, Box a ``(lanes, flat_dim)`` float array, MultiBinary a
    ``(lanes, n)`` int array.
    """
    outputs = np.asarray(outputs, dtype=np.float64)
    if isinstance(space, Discrete):
        if outputs.shape[1] == 1:
            o = outputs[:, 0]
            if space.n == 2:
                in_unit = (o >= 0.0) & (o <= 1.0)
                return np.where(in_unit, o > 0.5, o > 0.0).astype(np.intp)
            # Mirror the scalar `int(abs(o) * n) % n` in float space:
            # floor matches int() on the non-negative product, and fmod on
            # the (exactly representable) floored value matches Python's
            # integer modulo even where a direct int64 cast would overflow
            # for huge activations.
            return np.fmod(np.floor(np.abs(o) * space.n), space.n).astype(np.intp)
        # np.argmax returns the first (lowest-index) maximum, matching the
        # scalar tie-break contract.
        return np.argmax(outputs[:, : space.n], axis=1)
    if isinstance(space, Box):
        arr = outputs[:, : space.flat_dim]
        if arr.shape[1] < space.flat_dim:
            arr = np.pad(arr, ((0, 0), (0, space.flat_dim - arr.shape[1])))
        return np.clip(arr, space.low.ravel(), space.high.ravel())
    if isinstance(space, MultiBinary):
        return (outputs[:, : space.n] > 0.5).astype(np.intp)
    raise TypeError(f"unsupported action space {space!r}")


@dataclass
class EpisodeResult:
    total_reward: float
    steps: int
    inference_macs: int


@dataclass
class EvaluationTotals:
    """Aggregate inference work done during one population evaluation.

    Feeds the platform models: total forward passes and MAC counts are the
    per-generation inference workload of Fig. 9(a)/(b).
    """

    episodes: int = 0
    steps: int = 0
    macs: int = 0

    def add(self, result: EpisodeResult) -> None:
        self.episodes += 1
        self.steps += result.steps
        self.macs += result.inference_macs


def run_episode(
    network: FeedForwardNetwork,
    env: Environment,
    max_steps: Optional[int] = None,
) -> EpisodeResult:
    """One rollout of ``network`` in ``env`` (steps 2-5 of the walkthrough)."""
    obs = env.reset()
    network.reset()
    total_reward = 0.0
    steps = 0
    macs_per_pass = network.num_macs
    limit = max_steps if max_steps is not None else env.max_episode_steps
    for _ in range(limit):
        outputs = network.activate(obs.ravel().tolist())
        action = action_from_outputs(outputs, env)
        obs, reward, done, _info = env.step(action)
        total_reward += reward
        steps += 1
        if done:
            break
    return EpisodeResult(total_reward, steps, macs_per_pass * steps)


def run_episodes_batched(
    policy,
    env_batch,
    seeds: Sequence[int],
    max_steps: Optional[int] = None,
    macs_per_pass: Optional[Sequence[int]] = None,
) -> List[EpisodeResult]:
    """Batched :func:`run_episode`: one lane per seed, stepped in lockstep.

    ``policy`` maps a packed observation matrix to a packed output matrix
    (``step(obs) -> outputs``) and is told when lanes finish
    (``prune(keep)``) so it can compact its per-lane state alongside
    ``env_batch``.  Rewards accumulate per lane in step order, so each
    lane's float arithmetic matches the scalar episode loop exactly.
    """
    n = len(seeds)
    obs = env_batch.start(seeds)
    limit = max_steps if max_steps is not None else env_batch.max_episode_steps
    space = env_batch.action_space
    rewards = np.zeros(n)
    steps = np.zeros(n, dtype=np.int64)
    live = np.arange(n)
    for _ in range(limit):
        if len(live) == 0:
            break
        outputs = policy.step(obs)
        actions = actions_from_outputs_batch(outputs, space)
        obs, step_rewards, dones = env_batch.step(actions)
        rewards[live] += step_rewards
        steps[live] += 1
        if dones.any():
            keep = ~dones
            live = live[keep]
            obs = obs[keep]
            env_batch.prune(keep)
            policy.prune(keep)
    per_pass = macs_per_pass if macs_per_pass is not None else [0] * n
    return [
        EpisodeResult(float(rewards[i]), int(steps[i]), int(per_pass[i]) * int(steps[i]))
        for i in range(n)
    ]


class FitnessEvaluator:
    """Callable fitness function for :class:`repro.neat.Population`.

    Evaluates each genome over ``episodes`` rollouts with per-genome
    derived seeds and assigns the mean cumulative reward as fitness
    (step 6: "The reward value is then translated into a fitness value").
    A custom ``fitness_transform`` supports the paper's observation that
    only the fitness function changes between workloads.
    """

    def __init__(
        self,
        env_id: str,
        episodes: int = 1,
        max_steps: Optional[int] = None,
        seed: Optional[int] = 0,
        fitness_transform: Optional[Callable[[float], float]] = None,
        start_generation: int = 0,
        scenario=None,
    ) -> None:
        self.env_id = env_id
        self.episodes = episodes
        self.max_steps = max_steps
        self.seed = seed
        self.fitness_transform = fitness_transform
        self.scenario = scenario
        self.totals = EvaluationTotals()
        # Episode seeds derive from the generation index, so a resumed
        # run must restart the counter where the checkpoint left off.
        self._generation = start_generation

    def _make_env(self) -> Environment:
        if self.scenario is not None:
            from ..scenarios import build_env  # lazy: avoids a package cycle

            return build_env(self.scenario)
        return make(self.env_id)

    def __call__(self, genomes: List[Genome], config: NEATConfig) -> None:
        env = self._make_env()
        for genome in genomes:
            network = FeedForwardNetwork.create(genome, config.genome)
            rewards = []
            for episode in range(self.episodes):
                env.seed(
                    episode_seed(self.seed, self._generation, genome.key, episode)
                )
                result = run_episode(network, env, self.max_steps)
                rewards.append(result.total_reward)
                self.totals.add(result)
            fitness = sum(rewards) / len(rewards)
            if self.fitness_transform is not None:
                fitness = self.fitness_transform(fitness)
            genome.fitness = fitness
        self._generation += 1
