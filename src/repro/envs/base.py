"""Environment interface.

A from-scratch stand-in for the OpenAI gym API the paper uses (Table I):
``reset() -> observation`` and ``step(action) -> (observation, reward,
done, info)``.  Environments are the "n Environment Instances" block of
the GeneSys SoC diagram (Fig. 6) — the thing ADAM exchanges state/action
pairs with in steps 2-4 of the walkthrough.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .seeding import make_rng
from .spaces import Space

StepResult = Tuple[np.ndarray, float, bool, Dict[str, Any]]


class Environment:
    """Base environment; subclasses implement ``_reset`` and ``_step``."""

    #: subclasses set these class-level space descriptors
    observation_space: Space
    action_space: Space
    #: hard episode cap, mirroring gym's TimeLimit wrapper
    max_episode_steps: int = 1000

    def __init__(self, seed: Optional[int] = None) -> None:
        self.rng: random.Random = make_rng(seed)
        self._elapsed_steps = 0
        self._done = True

    # -- public API --------------------------------------------------------

    def seed(self, seed: Optional[int]) -> None:
        self.rng = make_rng(seed)

    def reset(self) -> np.ndarray:
        self._elapsed_steps = 0
        self._done = False
        obs = self._reset()
        return np.asarray(obs, dtype=np.float64)

    def step(self, action) -> StepResult:
        if self._done:
            raise RuntimeError("step() called on a finished episode; call reset()")
        if not self.action_space.contains(action):
            raise ValueError(f"action {action!r} not in {self.action_space!r}")
        obs, reward, done, info = self._step(action)
        self._elapsed_steps += 1
        if self._elapsed_steps >= self.max_episode_steps:
            done = True
            info.setdefault("TimeLimit.truncated", True)
        self._done = done
        return np.asarray(obs, dtype=np.float64), float(reward), bool(done), info

    # -- subclass hooks ------------------------------------------------------

    def _reset(self) -> np.ndarray:
        raise NotImplementedError

    def _step(self, action) -> StepResult:
        raise NotImplementedError

    # -- metadata -------------------------------------------------------------

    @property
    def name(self) -> str:
        return type(self).__name__

    @property
    def num_observations(self) -> int:
        return self.observation_space.flat_dim

    @property
    def num_actions(self) -> int:
        return self.action_space.flat_dim

    def __repr__(self) -> str:
        return (
            f"{self.name}(obs={self.observation_space!r}, act={self.action_space!r})"
        )
