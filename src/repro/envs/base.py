"""Environment interface.

A from-scratch stand-in for the OpenAI gym API the paper uses (Table I):
``reset() -> observation`` and ``step(action) -> (observation, reward,
done, info)``.  Environments are the "n Environment Instances" block of
the GeneSys SoC diagram (Fig. 6) — the thing ADAM exchanges state/action
pairs with in steps 2-4 of the walkthrough.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from .seeding import make_rng
from .spaces import Space

StepResult = Tuple[np.ndarray, float, bool, Dict[str, Any]]


class Environment:
    """Base environment; subclasses implement ``_reset`` and ``_step``."""

    #: subclasses set these class-level space descriptors
    observation_space: Space
    action_space: Space
    #: hard episode cap, mirroring gym's TimeLimit wrapper
    max_episode_steps: int = 1000
    #: name -> default for every constructor-tunable physics/reward
    #: parameter; empty for environments with fixed dynamics.  Tunable
    #: environments override this plus :meth:`_apply_params`, which
    #: mirrors ``self.params`` onto the instance attributes the step
    #: function reads (shadowing the class constants).
    TUNABLE_PARAMS: Mapping[str, float] = {}

    def __init__(self, seed: Optional[int] = None, **params: float) -> None:
        self.rng: random.Random = make_rng(seed)
        self._elapsed_steps = 0
        self._done = True
        self.params: Dict[str, float] = dict(self.TUNABLE_PARAMS)
        if params:
            self.configure(**params)
        elif self.params:
            self._apply_params()

    # -- public API --------------------------------------------------------

    @classmethod
    def tunable_params(cls) -> Dict[str, float]:
        """The tunable parameter names and their defaults."""
        return dict(cls.TUNABLE_PARAMS)

    def configure(self, **params: float) -> None:
        """Override tunable physics/reward parameters on this instance."""
        unknown = sorted(set(params) - set(self.TUNABLE_PARAMS))
        if unknown:
            raise ValueError(
                f"{self.name} has no tunable parameter(s) {unknown}; "
                f"tunable: {sorted(self.TUNABLE_PARAMS)}"
            )
        for key, value in params.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"{self.name} parameter {key!r} must be a number, "
                    f"got {value!r}"
                )
            self.params[key] = float(value)
        self._apply_params()

    def seed(self, seed: Optional[int]) -> None:
        self.rng = make_rng(seed)

    def reset(self) -> np.ndarray:
        self._elapsed_steps = 0
        self._done = False
        obs = self._reset()
        return np.asarray(obs, dtype=np.float64)

    def step(self, action) -> StepResult:
        if self._done:
            raise RuntimeError("step() called on a finished episode; call reset()")
        if not self.action_space.contains(action):
            raise ValueError(f"action {action!r} not in {self.action_space!r}")
        obs, reward, done, info = self._step(action)
        self._elapsed_steps += 1
        if self._elapsed_steps >= self.max_episode_steps:
            done = True
            info.setdefault("TimeLimit.truncated", True)
        self._done = done
        return np.asarray(obs, dtype=np.float64), float(reward), bool(done), info

    # -- subclass hooks ------------------------------------------------------

    def _apply_params(self) -> None:
        """Mirror ``self.params`` onto the attributes ``_step`` reads."""

    def _reset(self) -> np.ndarray:
        raise NotImplementedError

    def _step(self, action) -> StepResult:
        raise NotImplementedError

    # -- metadata -------------------------------------------------------------

    @property
    def name(self) -> str:
        return type(self).__name__

    @property
    def num_observations(self) -> int:
        return self.observation_space.flat_dim

    @property
    def num_actions(self) -> int:
        return self.action_space.flat_dim

    def __repr__(self) -> str:
        return (
            f"{self.name}(obs={self.observation_space!r}, act={self.action_space!r})"
        )
