"""Acrobot-v1: swing up a two-link pendulum by torquing the middle joint.

Port of gym's ``acrobot.py`` (Sutton 1996 "book" dynamics) with RK4
integration.  Table I lists six floating point observations (cos/sin of
both joint angles plus the two angular velocities) and a one-dimensional
action (torque direction).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Tuple

import numpy as np

from .base import Environment
from .spaces import Box, Discrete


def _wrap(x: float, low: float, high: float) -> float:
    diff = high - low
    while x > high:
        x -= diff
    while x < low:
        x += diff
    return x


def _bound(x: float, low: float, high: float) -> float:
    return min(max(x, low), high)


class AcrobotEnv(Environment):
    DT = 0.2
    LINK_LENGTH_1 = 1.0
    LINK_LENGTH_2 = 1.0
    LINK_MASS_1 = 1.0
    LINK_MASS_2 = 1.0
    LINK_COM_POS_1 = 0.5
    LINK_COM_POS_2 = 0.5
    LINK_MOI = 1.0
    MAX_VEL_1 = 4 * math.pi
    MAX_VEL_2 = 9 * math.pi
    AVAIL_TORQUE = (-1.0, 0.0, 1.0)

    observation_space = Box(
        low=[-1.0, -1.0, -1.0, -1.0, -MAX_VEL_1, -MAX_VEL_2],
        high=[1.0, 1.0, 1.0, 1.0, MAX_VEL_1, MAX_VEL_2],
    )
    action_space = Discrete(3)
    max_episode_steps = 500
    #: Gym's reward threshold for Acrobot-v1.
    solve_threshold = -100.0

    def _reset(self) -> np.ndarray:
        self.state = np.array(
            [self.rng.uniform(-0.1, 0.1) for _ in range(4)], dtype=np.float64
        )
        return self._observation()

    def _observation(self) -> np.ndarray:
        theta1, theta2, dtheta1, dtheta2 = self.state
        return np.array(
            [
                math.cos(theta1),
                math.sin(theta1),
                math.cos(theta2),
                math.sin(theta2),
                dtheta1,
                dtheta2,
            ],
            dtype=np.float64,
        )

    def _dsdt(self, augmented: np.ndarray) -> np.ndarray:
        m1, m2 = self.LINK_MASS_1, self.LINK_MASS_2
        l1 = self.LINK_LENGTH_1
        lc1, lc2 = self.LINK_COM_POS_1, self.LINK_COM_POS_2
        i1 = i2 = self.LINK_MOI
        g = 9.8
        a = augmented[-1]
        theta1, theta2, dtheta1, dtheta2 = augmented[:-1]
        d1 = (
            m1 * lc1 ** 2
            + m2 * (l1 ** 2 + lc2 ** 2 + 2 * l1 * lc2 * math.cos(theta2))
            + i1
            + i2
        )
        d2 = m2 * (lc2 ** 2 + l1 * lc2 * math.cos(theta2)) + i2
        phi2 = m2 * lc2 * g * math.cos(theta1 + theta2 - math.pi / 2.0)
        phi1 = (
            -m2 * l1 * lc2 * dtheta2 ** 2 * math.sin(theta2)
            - 2 * m2 * l1 * lc2 * dtheta2 * dtheta1 * math.sin(theta2)
            + (m1 * lc1 + m2 * l1) * g * math.cos(theta1 - math.pi / 2)
            + phi2
        )
        # "Book" variant of the dynamics (gym default).
        ddtheta2 = (
            a + d2 / d1 * phi1 - m2 * l1 * lc2 * dtheta1 ** 2 * math.sin(theta2) - phi2
        ) / (m2 * lc2 ** 2 + i2 - d2 ** 2 / d1)
        ddtheta1 = -(d2 * ddtheta2 + phi1) / d1
        return np.array([dtheta1, dtheta2, ddtheta1, ddtheta2, 0.0], dtype=np.float64)

    def _rk4(self, y0: np.ndarray, dt: float) -> np.ndarray:
        k1 = self._dsdt(y0)
        k2 = self._dsdt(y0 + dt / 2 * k1)
        k3 = self._dsdt(y0 + dt / 2 * k2)
        k4 = self._dsdt(y0 + dt * k3)
        return y0 + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)

    def _step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        torque = self.AVAIL_TORQUE[action]
        augmented = np.append(self.state, torque)
        new_state = self._rk4(augmented, self.DT)[:4]
        theta1 = _wrap(new_state[0], -math.pi, math.pi)
        theta2 = _wrap(new_state[1], -math.pi, math.pi)
        dtheta1 = _bound(new_state[2], -self.MAX_VEL_1, self.MAX_VEL_1)
        dtheta2 = _bound(new_state[3], -self.MAX_VEL_2, self.MAX_VEL_2)
        self.state = np.array([theta1, theta2, dtheta1, dtheta2], dtype=np.float64)
        done = bool(
            -math.cos(theta1) - math.cos(theta2 + theta1) > 1.0
        )
        reward = 0.0 if done else -1.0
        return self._observation(), reward, done, {}
