"""MountainCar-v0: drive an underpowered car out of a valley.

Exact port of gym's ``mountain_car.py`` (Moore 1990 dynamics): position in
[-1.2, 0.6], velocity clipped to ±0.07, goal at position 0.5.  Table I:
two floating point observations; one integer action (< 3) for direction.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Tuple

import numpy as np

from .base import Environment
from .spaces import Box, Discrete


class MountainCarEnv(Environment):
    MIN_POSITION = -1.2
    MAX_POSITION = 0.6
    MAX_SPEED = 0.07
    GOAL_POSITION = 0.5
    FORCE = 0.001
    GRAVITY = 0.0025
    REWARD_PER_STEP = -1.0

    TUNABLE_PARAMS = {
        "force": FORCE,
        "gravity": GRAVITY,
        "goal_position": GOAL_POSITION,
        "reward_per_step": REWARD_PER_STEP,
    }

    observation_space = Box(
        low=[MIN_POSITION, -MAX_SPEED], high=[MAX_POSITION, MAX_SPEED]
    )
    action_space = Discrete(3)
    max_episode_steps = 200
    #: Gym's MountainCar-v0 "solved" bar is an average return >= -110.
    solve_threshold = -110.0

    def _apply_params(self) -> None:
        p = self.params
        self.FORCE = p["force"]
        self.GRAVITY = p["gravity"]
        self.GOAL_POSITION = p["goal_position"]
        self.REWARD_PER_STEP = p["reward_per_step"]

    def _reset(self) -> np.ndarray:
        self.state = np.array(
            [self.rng.uniform(-0.6, -0.4), 0.0], dtype=np.float64
        )
        return self.state.copy()

    def _step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        position, velocity = self.state
        velocity += (action - 1) * self.FORCE + math.cos(3 * position) * (-self.GRAVITY)
        velocity = float(np.clip(velocity, -self.MAX_SPEED, self.MAX_SPEED))
        position += velocity
        position = float(np.clip(position, self.MIN_POSITION, self.MAX_POSITION))
        if position <= self.MIN_POSITION and velocity < 0:
            velocity = 0.0
        self.state = np.array([position, velocity], dtype=np.float64)
        done = bool(position >= self.GOAL_POSITION)
        reward = self.REWARD_PER_STEP
        return self.state.copy(), reward, done, {}
