"""Deterministic seeding helpers shared by all environments."""

from __future__ import annotations

import random
from typing import Optional


def make_rng(seed: Optional[int] = None) -> random.Random:
    """A fresh ``random.Random``; ``None`` seeds from entropy."""
    return random.Random(seed)


def derive_seed(base_seed: Optional[int], stream: int) -> Optional[int]:
    """Derive an independent child seed (e.g. per-episode, per-genome).

    Uses splitmix64-style mixing so nearby ``stream`` values give
    decorrelated child seeds.
    """
    if base_seed is None:
        return None
    z = (base_seed + 0x9E3779B97F4A7C15 * (stream + 1)) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) & 0x7FFFFFFF


def episode_seed(
    base_seed: Optional[int], generation: int, genome_key: int, episode: int
) -> Optional[int]:
    """The canonical per-(generation, genome, episode) seed stream.

    Every fitness evaluator — serial, pooled, vectorized — derives its
    episode seeds through this one formula; that shared derivation is
    what makes their results bit-identical for a fixed experiment seed.
    """
    return derive_seed(
        base_seed, (generation * 1_000_003 + genome_key) * 17 + episode
    )
