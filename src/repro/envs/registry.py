"""Environment registry: ``make("CartPole-v0")`` etc.

Ids follow the OpenAI gym names the paper uses in its figures
(e.g. "CartPole_v0", "Alien-ram-v0"); lookup is punctuation- and
case-insensitive so the exact label spelling from any paper figure works.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from .acrobot import AcrobotEnv
from .atari_ram import AirRaidRamEnv, AlienRamEnv, AmidarRamEnv, AsterixRamEnv
from .base import Environment
from .bipedal import BipedalWalkerEnv
from .cartpole import CartPoleEnv
from .lunar_lander import LunarLanderEnv
from .mountain_car import MountainCarEnv


class UnknownEnvironmentError(KeyError):
    pass


_REGISTRY: Dict[str, Type[Environment]] = {}
#: normalised key -> the display spelling it was registered under.
_DISPLAY: Dict[str, str] = {}


def _normalise(env_id: str) -> str:
    return "".join(ch for ch in env_id.lower() if ch.isalnum())


def register(env_id: str, cls: Type[Environment]) -> None:
    key = _normalise(env_id)
    _REGISTRY[key] = cls
    _DISPLAY[key] = env_id


def unregister(env_id: str) -> None:
    """Remove a registered environment (mainly for test hygiene)."""
    key = _normalise(env_id)
    if key not in _REGISTRY:
        raise UnknownEnvironmentError(f"unknown environment {env_id!r}")
    del _REGISTRY[key]
    _DISPLAY.pop(key, None)


def make(env_id: str, seed: Optional[int] = None) -> Environment:
    """Instantiate a registered environment by (fuzzy) id."""
    key = _normalise(env_id)
    if key not in _REGISTRY:
        raise UnknownEnvironmentError(
            f"unknown environment {env_id!r}; known: {available()}"
        )
    return _REGISTRY[key](seed=seed)


def available() -> List[str]:
    """Every registered id: canonical paper spellings first, then extras."""
    canonical_keys = {_normalise(env_id): env_id for env_id in CANONICAL_IDS}
    listed = sorted(
        env_id for key, env_id in canonical_keys.items() if key in _REGISTRY
    )
    listed += sorted(
        display
        for key, display in _DISPLAY.items()
        if key not in canonical_keys
    )
    return listed


#: Canonical ids as the paper spells them (Table I / figure axis labels).
CANONICAL_IDS = [
    "CartPole-v0",
    "MountainCar-v0",
    "Acrobot-v1",
    "LunarLander-v2",
    "BipedalWalker-v2",
    "AirRaid-ram-v0",
    "Alien-ram-v0",
    "Asterix-ram-v0",
    "Amidar-ram-v0",
]

#: The six environments used in the Fig. 9/10 evaluation sweeps.
EVALUATION_SUITE = [
    "CartPole-v0",
    "MountainCar-v0",
    "LunarLander-v2",
    "AirRaid-ram-v0",
    "Amidar-ram-v0",
    "Alien-ram-v0",
]

#: The smaller "classic" class vs the Atari class (Fig. 5 discussion).
CLASSIC_SUITE = ["CartPole-v0", "MountainCar-v0", "LunarLander-v2"]
ATARI_SUITE = ["AirRaid-ram-v0", "Alien-ram-v0", "Asterix-ram-v0", "Amidar-ram-v0"]

for _env_id, _cls in [
    ("CartPole-v0", CartPoleEnv),
    ("MountainCar-v0", MountainCarEnv),
    ("Acrobot-v1", AcrobotEnv),
    ("LunarLander-v2", LunarLanderEnv),
    ("BipedalWalker-v2", BipedalWalkerEnv),
    ("AirRaid-ram-v0", AirRaidRamEnv),
    ("Alien-ram-v0", AlienRamEnv),
    ("Asterix-ram-v0", AsterixRamEnv),
    ("Amidar-ram-v0", AmidarRamEnv),
]:
    register(_env_id, _cls)
