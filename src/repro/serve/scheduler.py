"""The preemptive scheduler: a process pool over the job store.

One :class:`Scheduler` owns one serve root.  Each :meth:`step` it

1. **reaps** finished worker processes, deriving the outcome from the
   run directory alone (``result.json`` present -> ``done``; cancel flag
   -> ``cancelled``; clean exit without a result -> ``preempted``;
   nonzero exit -> retry with exponential backoff or ``failed``);
2. **reclaims** jobs a dead scheduler left marked ``running`` (their
   run-dir lock is stale or gone) back to ``queued``;
3. **preempts**: when every worker slot is busy and a waiting job
   outranks a running one, the lowest-priority preemptible running job
   gets its ``preempt`` flag — its worker checkpoints at the next
   cadence boundary and exits, freeing the slot;
4. **dispatches** waiting jobs (highest priority first, FIFO within a
   priority) into free slots.

Workers are real ``multiprocessing.Process`` children running
:func:`_job_worker`: the whole job goes through
:func:`repro.runs.run_in_dir` with ``resume="auto"`` and a
``should_stop`` that yields only at checkpoint-cadence boundaries when a
preempt/cancel flag exists.  Because slices always end exactly on a
checkpoint the runner just laid down, and episode seeds are a pure
function of (seed, generation, genome, episode), a job preempted N
times produces artifacts *byte-identical* to an uninterrupted run —
the golden test in ``tests/test_serve_scheduler.py``.

One scheduler per root: the store itself is safe for concurrent
submitters and readers, but two schedulers would race on dispatch.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Callable, Dict, List, Optional, Union

from ..obs import JsonlTail, MetricsRegistry
from ..runs.locking import RunDirLock, read_lock
from ..runs.runner import run_in_dir
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PREEMPTED,
    QUEUED,
    RUNNING,
    WAITING_STATES,
    JobRecord,
    JobStore,
)

#: Default seconds without a lock heartbeat before a running job is
#: considered orphaned and reclaimed.  Deliberately shorter than the
#: run-lock default: the scheduler polls, a human does not.
DEFAULT_STALE_AFTER = 30.0


def _job_worker(root: str, job_id: str) -> None:
    """Process entry point: run one job until done or told to yield.

    Runs in a child process.  Exit code 0 means "clean" — either the
    run completed (``result.json`` exists) or it yielded at a checkpoint
    boundary (preempt/cancel flag); the parent tells them apart from the
    run dir.  Any exception exits 1 with the traceback parked in the
    job dir's ``error.txt`` for the parent to attach to the record.
    """
    store = JobStore(root)
    record = store.load(job_id)
    cadence = record.checkpoint_every

    def should_stop(generation: int) -> bool:
        # Only yield where the runner just checkpointed — that keeps
        # every slice boundary on the same generation grid an
        # uninterrupted run uses, which is what makes resumption
        # byte-identical.
        if generation % cadence != 0:
            return False
        return store.preempt_requested(job_id) or store.cancel_requested(
            job_id
        )

    try:
        run_in_dir(
            record.spec_obj,
            store.run_dir(job_id),
            resume="auto",
            checkpoint_every=cadence,
            should_stop=should_stop,
        )
    except BaseException:
        store.write_worker_error(job_id, traceback.format_exc())
        raise SystemExit(1)


class Scheduler:
    """Drive jobs from a :class:`JobStore` through a worker-process pool.

    Parameters
    ----------
    store:
        The job store (or a root path for one).
    workers:
        Concurrent worker-process slots.
    poll_interval:
        Sleep between :meth:`step` calls in the run loops, seconds.
    backoff_base:
        First retry delay; attempt *n* waits ``backoff_base * 2**(n-1)``.
    stale_after:
        Lock-heartbeat age past which a ``running`` job with no live
        worker here is reclaimed.
    registry:
        A :class:`repro.obs.MetricsRegistry` to instrument into (one is
        created when omitted).  ``GET /metrics`` renders it when the
        HTTP API server is given the same registry (``repro serve``
        wires this up).
    """

    def __init__(
        self,
        store: Union[JobStore, str],
        workers: int = 2,
        poll_interval: float = 0.2,
        backoff_base: float = 1.0,
        stale_after: float = DEFAULT_STALE_AFTER,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        self.workers = workers
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.stale_after = stale_after
        self._procs: Dict[str, multiprocessing.Process] = {}
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._m_dispatches = self.metrics.counter(
            "repro_dispatches_total",
            "Worker processes launched (job starts and resumes).",
        )
        self._m_preempt_requests = self.metrics.counter(
            "repro_preempt_requests_total",
            "Preempt flags raised by the priority scheduler.",
        )
        self._m_preemptions = self.metrics.counter(
            "repro_preemptions_total",
            "Workers that yielded at a checkpoint boundary and were "
            "requeued.",
        )
        self._m_retries = self.metrics.counter(
            "repro_retries_total",
            "Crashed-worker retries scheduled with backoff (counted "
            "against max_retries).",
        )
        self._m_reclaims = self.metrics.counter(
            "repro_reclaims_total",
            "Jobs requeued through no fault of their own (stale "
            "heartbeat, scheduler-initiated termination); never "
            "counted against max_retries.",
        )
        self._m_settled = self.metrics.counter(
            "repro_jobs_settled_total",
            "Jobs settled by terminal-or-requeue outcome.",
        )
        self._m_generation_seconds = self.metrics.histogram(
            "repro_generation_seconds",
            "Per-generation latency of running jobs, approximated from "
            "metrics.jsonl growth between scheduler polls.",
        )
        self._m_scenario_stage = self.metrics.gauge(
            "repro_scenario_stage",
            "Current curriculum stage per job, read from the latest "
            "metrics.jsonl row; only scenario runs emit the column.",
        )
        # Per running job: an incremental metrics.jsonl cursor plus the
        # monotonic instant of its last observed growth.
        self._tails: Dict[str, JsonlTail] = {}
        self._tail_marks: Dict[str, float] = {}

    # -- queries ----------------------------------------------------------

    @property
    def active_jobs(self) -> List[str]:
        """Ids of jobs with a live worker process in this scheduler."""
        return sorted(self._procs)

    def _waiting(self, records: List[JobRecord]) -> List[JobRecord]:
        now = time.time()
        ready = [
            r
            for r in records
            if r.state in WAITING_STATES and r.not_before <= now
        ]
        # Highest priority first; FIFO (submission order) within a tier.
        ready.sort(key=lambda r: (-r.priority, r.id))
        return ready

    # -- the four phases of one step --------------------------------------

    def _reap(self) -> None:
        for job_id in list(self._procs):
            proc = self._procs[job_id]
            if proc.is_alive():
                continue
            proc.join()
            del self._procs[job_id]
            self._sample_latency(job_id)  # rows laid down since last poll
            self._tails.pop(job_id, None)
            self._tail_marks.pop(job_id, None)
            self._settle(job_id, proc.exitcode or 0)

    def _sample_latency(self, job_id: str) -> None:
        """Feed the generation-latency histogram from one job's
        ``metrics.jsonl`` growth: N new rows since the last observation
        spread the elapsed wall time evenly — an approximation at
        poll-interval resolution, not a per-generation stopwatch."""
        tail = self._tails.get(job_id)
        if tail is None:
            return
        rows = tail.poll()
        if not rows:
            return
        now = time.monotonic()
        mark = self._tail_marks.get(job_id, now)
        per_row = max(0.0, now - mark) / len(rows)
        for _ in rows:
            self._m_generation_seconds.observe(per_row)
        stage = rows[-1].get("scenario_stage")
        if stage is not None:
            self._m_scenario_stage.set(int(stage), job=job_id)
        self._tail_marks[job_id] = now

    def _sample_latencies(self) -> None:
        for job_id in list(self._procs):
            self._sample_latency(job_id)

    def _settle(self, job_id: str, exitcode: int) -> None:
        """Record the outcome of a finished worker from its run dir."""
        record = self.store.load(job_id)
        if record.state != RUNNING:
            return  # already resolved (e.g. reclaimed by another path)
        rd = self.store.run_dir(job_id)
        result = rd.load_result() if rd.has_artifacts() else None
        latest = rd.latest_checkpoint()
        generations_done = latest[0] if latest else 0

        if exitcode == 0 and result is not None:
            self.store.clear_preempt(job_id)
            self.store.clear_cancel(job_id)
            self.store.transition(
                job_id,
                DONE,
                worker_pid=None,
                generations_done=int(result.get("generations", 0)),
                converged=bool(result.get("converged", False)),
            )
            self._m_settled.inc(outcome="done")
        elif exitcode == 0 and self.store.cancel_requested(job_id):
            self.store.clear_cancel(job_id)
            self.store.clear_preempt(job_id)
            self.store.transition(
                job_id,
                CANCELLED,
                event="cancelled",
                worker_pid=None,
                generations_done=generations_done,
            )
            self._m_settled.inc(outcome="cancelled")
        elif exitcode == 0:
            # Clean exit, no result: the worker yielded at a checkpoint.
            self.store.clear_preempt(job_id)
            self.store.transition(
                job_id,
                PREEMPTED,
                worker_pid=None,
                generations_done=generations_done,
            )
            self._m_preemptions.inc()
            self._m_settled.inc(outcome="preempted")
        elif (
            self.store.preempt_requested(job_id)
            and self.store.read_worker_error(job_id) is None
        ):
            # The worker died without raising, after being asked to
            # yield — the scheduler's own shutdown terminate, not a job
            # fault.  Requeue as a reclaim: the job keeps its retry
            # budget (error.txt is cleared at dispatch, so a missing
            # file really means this attempt did not crash).
            self.store.clear_preempt(job_id)
            self.store.transition(
                job_id,
                QUEUED,
                event="reclaimed",
                worker_pid=None,
                reclaims=record.reclaims + 1,
                generations_done=generations_done,
            )
            self._m_reclaims.inc()
            self._m_settled.inc(outcome="reclaimed")
        else:
            error = (
                self.store.read_worker_error(job_id)
                or f"worker exited with code {exitcode}"
            )
            attempts = record.attempts + 1
            if attempts > record.max_retries:
                self.store.transition(
                    job_id,
                    FAILED,
                    worker_pid=None,
                    attempts=attempts,
                    error=error,
                    generations_done=generations_done,
                )
                self._m_settled.inc(outcome="failed")
            else:
                delay = self.backoff_base * 2 ** (attempts - 1)
                self.store.transition(
                    job_id,
                    QUEUED,
                    event="retry_scheduled",
                    worker_pid=None,
                    attempts=attempts,
                    error=error,
                    not_before=time.time() + delay,
                    generations_done=generations_done,
                )
                self._m_retries.inc()
                self._m_settled.inc(outcome="retried")

    def _reclaim(self, records: List[JobRecord]) -> None:
        """Requeue ``running`` jobs whose worker is provably gone —
        crashed scheduler, SIGKILLed worker — judged by the run-dir
        lock's heartbeat, exactly like any other stale-lock holder."""
        for record in records:
            if record.state != RUNNING or record.id in self._procs:
                continue
            rd = self.store.run_dir(record.id)
            payload = read_lock(rd.path)
            lock = RunDirLock(rd.path, stale_after=self.stale_after)
            if payload is None or lock.is_stale(payload):
                self.store.transition(
                    record.id,
                    QUEUED,
                    event="reclaimed",
                    worker_pid=None,
                    reclaims=record.reclaims + 1,
                )
                self._m_reclaims.inc()

    def _cancel_waiting(self, records: List[JobRecord]) -> None:
        """A cancel that raced a preemption lands here: the job is back
        in a waiting state with its cancel flag still set."""
        for record in records:
            if record.state in WAITING_STATES and self.store.cancel_requested(
                record.id
            ):
                self.store.clear_cancel(record.id)
                self.store.clear_preempt(record.id)
                self.store.transition(record.id, CANCELLED, event="cancelled")

    def _maybe_preempt(self, records: List[JobRecord]) -> None:
        waiting = self._waiting(records)
        if not waiting or len(self._procs) < self.workers:
            return  # a free slot serves the queue without violence
        challenger = waiting[0]
        running = [
            r
            for r in records
            if r.id in self._procs
            and r.preemptible
            and not self.store.preempt_requested(r.id)
        ]
        if not running:
            return
        victim = min(running, key=lambda r: (r.priority, r.id))
        if challenger.priority > victim.priority:
            self.store.request_preempt(victim.id)
            self.store.append_event(
                victim.id,
                "preempt_requested",
                by=challenger.id,
                challenger_priority=challenger.priority,
            )
            self._m_preempt_requests.inc()

    def _dispatch(self, records: List[JobRecord]) -> None:
        by_id = {r.id: r for r in records}
        for record in self._waiting(records):
            if len(self._procs) >= self.workers:
                break
            record = by_id[record.id]
            # The error channel must belong to the attempt being
            # launched — a lingering error.txt from an earlier crash
            # would misclassify this attempt's outcome at settle time.
            self.store.clear_worker_error(record.id)
            proc = multiprocessing.Process(
                target=_job_worker,
                args=(str(self.store.root), record.id),
                name=f"repro-serve-{record.id}",
            )
            proc.start()
            event = "resumed" if record.state == PREEMPTED else "started"
            self.store.transition(
                record.id,
                RUNNING,
                event=event,
                worker_pid=proc.pid,
            )
            self._procs[record.id] = proc
            self._m_dispatches.inc()
            # Start the latency cursor past rows already on disk so a
            # resumed job's prefix is not observed as one giant burst.
            tail = JsonlTail(self.store.run_dir(record.id).metrics_path)
            tail.poll()
            self._tails[record.id] = tail
            self._tail_marks[record.id] = time.monotonic()

    # -- driving ----------------------------------------------------------

    def step(self) -> None:
        """One scheduling round: reap, reclaim, cancel, preempt, dispatch."""
        self._reap()
        self._sample_latencies()
        records = self.store.list_jobs()
        self._reclaim(records)
        self._cancel_waiting(records)
        records = self.store.list_jobs()
        self._maybe_preempt(records)
        self._dispatch(records)

    def idle(self) -> bool:
        """No live workers and nothing waiting or running."""
        if self._procs:
            return False
        return not any(
            r.state in WAITING_STATES or r.state == RUNNING
            for r in self.store.list_jobs()
        )

    def run_until_idle(self, timeout: Optional[float] = None) -> None:
        """Step until every job is terminal (the batch / CI mode)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self.step()
            if self.idle():
                return
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"jobs still active after {timeout}s: "
                    f"{[r.id for r in self.store.list_jobs() if not r.terminal]}"
                )
            time.sleep(self.poll_interval)

    def run_forever(
        self, stop: Optional[Callable[[], bool]] = None
    ) -> None:
        """Step until ``stop()`` returns true (the ``repro serve`` mode)."""
        while stop is None or not stop():
            self.step()
            time.sleep(self.poll_interval)

    def shutdown(self, grace: float = 10.0) -> None:
        """Stop workers: ask each to yield at its next checkpoint, wait
        up to ``grace`` seconds, then terminate stragglers.  Settled
        jobs resume from their last checkpoint on the next scheduler."""
        for job_id in list(self._procs):
            self.store.request_preempt(job_id)
        deadline = time.monotonic() + grace
        for job_id, proc in list(self._procs.items()):
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join()
        self._reap()
        self._procs.clear()
