"""Evolution-as-a-service: a preemptive scheduler over durable run dirs.

The paper's deployment story is a *fleet*: many agents evolving in the
field, sharing scarce compute, with learning that survives power cycles
(Section I).  This package is that story as a subsystem — experiments
become *jobs* that queue, run, preempt and resume without losing a
generation:

* :class:`JobStore` — a durable on-disk queue: one directory per job
  holding the spec, scheduling state (atomic ``job.json``), an
  append-only event log, and the :class:`repro.runs.RunDir` with the
  actual artifacts.
* :class:`Scheduler` — a worker-process pool over the store.  Jobs run
  in checkpoint-cadence slices; a higher-priority submission preempts a
  running job *at its next checkpoint boundary* (checkpoint -> yield ->
  requeue -> resume), crashed workers are detected by their stale
  run-dir lock heartbeat and retried with exponential backoff — and a
  job preempted N times produces artifacts byte-identical to an
  uninterrupted run (golden-tested).
* :class:`JobApiServer` / :class:`ServeClient` — a stdlib HTTP/JSON API
  over the store: submit a spec, poll status and metrics, fetch the
  champion, cancel.

Quickstart::

    from repro.api import ExperimentSpec
    from repro.serve import JobStore, Scheduler

    store = JobStore("serve-root")
    store.submit(ExperimentSpec("CartPole-v0", max_generations=30))
    store.submit(ExperimentSpec("MountainCar-v0"), priority=10)  # jumps queue
    Scheduler(store, workers=2).run_until_idle()

CLI: ``repro serve ROOT --workers 2`` runs scheduler + API;
``repro submit``, ``repro jobs`` and ``repro job ID`` talk to either the
root directory or the HTTP endpoint.  See ``docs/serve.md``.
"""

from .client import ServeClient, ServeClientError
from .http import DEFAULT_HOST, DEFAULT_PORT, JobApiServer
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    PREEMPTED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    WAITING_STATES,
    JobRecord,
    JobStore,
    JobStoreError,
    UnknownJobError,
)
from .scheduler import Scheduler

__all__ = [
    "CANCELLED",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "JobApiServer",
    "JobRecord",
    "JobStore",
    "JobStoreError",
    "PREEMPTED",
    "QUEUED",
    "RUNNING",
    "Scheduler",
    "ServeClient",
    "ServeClientError",
    "TERMINAL_STATES",
    "UnknownJobError",
    "WAITING_STATES",
]
