"""The durable on-disk job store: specs in, scheduled state out.

One serve root holds everything the scheduler and the HTTP API share:

```
<root>/jobs/
    job-000001/
        job.json        JobRecord — spec + scheduling state (atomic)
        events.jsonl    append-only job event log
        preempt         flag file: yield at the next checkpoint boundary
        cancel          flag file: stop and do not resume
        run/            the repro.runs RunDir with the actual artifacts
```

Everything is a file, so submission (``repro submit``), scheduling
(:class:`repro.serve.Scheduler`) and serving (:class:`repro.serve.
JobApiServer`) can live in different processes with no shared memory:
``job.json`` writes are atomic (temp + ``os.replace``), state changes go
through :meth:`JobStore.transition` which enforces the lifecycle

``queued -> running -> (preempted -> running)* -> done | failed``

(``cancelled`` is reachable from any non-terminal state), and every
transition appends a timestamped line to ``events.jsonl`` so a job's
history — submissions, slices, preemptions, retries, reclaims — is
replayable after the fact.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from ..api.spec import ExperimentSpec, SpecError
from ..runs.artifacts import RunDir
from ..runs.runner import DEFAULT_CHECKPOINT_EVERY

JOB_FILENAME = "job.json"
EVENTS_FILENAME = "events.jsonl"
PREEMPT_FLAG = "preempt"
CANCEL_FLAG = "cancel"
RUN_DIRNAME = "run"

#: Version tag of the job-record format.
JOB_FORMAT_VERSION = 1

# -- states -----------------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
PREEMPTED = "preempted"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every state a job can be in.
JOB_STATES = (QUEUED, RUNNING, PREEMPTED, DONE, FAILED, CANCELLED)
#: States a finished job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})
#: States eligible for dispatch.
WAITING_STATES = frozenset({QUEUED, PREEMPTED})

_ALLOWED_TRANSITIONS = {
    QUEUED: {RUNNING, CANCELLED, FAILED},
    RUNNING: {PREEMPTED, DONE, FAILED, QUEUED, CANCELLED},
    PREEMPTED: {RUNNING, CANCELLED, FAILED},
    DONE: set(),
    FAILED: set(),
    CANCELLED: set(),
}


class JobStoreError(RuntimeError):
    """Raised for malformed stores, bad submissions or bad transitions."""


class UnknownJobError(JobStoreError, KeyError):
    """Raised when a job id does not exist in the store."""


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


@dataclass
class JobRecord:
    """One job: an experiment spec plus its scheduling state."""

    id: str
    spec: Dict[str, Any]
    priority: int = 0
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    max_retries: int = 2
    state: str = QUEUED
    #: Crash retries consumed (counted against ``max_retries``).
    attempts: int = 0
    #: Times the job was requeued through no fault of its own — stale
    #: heartbeat after a scheduler death, or scheduler-initiated
    #: termination during shutdown.  Never counted against
    #: ``max_retries``: a crash-reclaimed job must not exhaust its
    #: retry budget spuriously.
    reclaims: int = 0
    created_at: float = 0.0
    updated_at: float = 0.0
    #: Earliest dispatch time (retry backoff); 0 means "now".
    not_before: float = 0.0
    worker_pid: Optional[int] = None
    error: Optional[str] = None
    #: Checkpointed progress (generations safely on disk).
    generations_done: int = 0
    converged: bool = False

    @property
    def spec_obj(self) -> ExperimentSpec:
        return ExperimentSpec.from_dict(self.spec)

    @property
    def max_generations(self) -> int:
        return int(self.spec.get("max_generations", 0))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def preemptible(self) -> bool:
        """Can this job yield and later resume?  The soc backend keeps
        no checkpoints, so preempting it would only forfeit work."""
        return str(self.spec.get("backend", "software")).partition(":")[0] != "soc"

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["format"] = JOB_FORMAT_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        payload = dict(data)
        payload.pop("format", None)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise JobStoreError(f"unknown job record fields: {unknown}")
        return cls(**payload)


class JobStore:
    """File-backed job queue under one serve root (see module docstring)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.jobs_root = self.root / "jobs"

    def __repr__(self) -> str:
        return f"JobStore({str(self.root)!r})"

    # -- paths ------------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_root / job_id

    def record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / JOB_FILENAME

    def events_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / EVENTS_FILENAME

    def run_dir(self, job_id: str) -> RunDir:
        return RunDir(self.job_dir(job_id) / RUN_DIRNAME)

    # -- submission -------------------------------------------------------

    def _allocate_id(self) -> str:
        """Claim the next ``job-%06d`` directory; atomic across processes
        (``mkdir`` of an existing directory fails, so one claimant wins)."""
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        taken = [
            int(entry.name[4:])
            for entry in self.jobs_root.iterdir()
            if entry.name.startswith("job-") and entry.name[4:].isdigit()
        ]
        candidate = max(taken, default=0) + 1
        while True:
            job_id = f"job-{candidate:06d}"
            try:
                self.job_dir(job_id).mkdir()
                return job_id
            except FileExistsError:
                candidate += 1

    def submit(
        self,
        spec: Union[ExperimentSpec, Mapping[str, Any]],
        priority: int = 0,
        checkpoint_every: Optional[int] = None,
        max_retries: int = 2,
    ) -> JobRecord:
        """Validate and enqueue one experiment spec; returns the record."""
        if not isinstance(spec, ExperimentSpec):
            try:
                spec = ExperimentSpec.from_dict(spec)
            except (SpecError, TypeError) as exc:
                raise JobStoreError(f"invalid job spec: {exc}") from exc
        if checkpoint_every is None:
            checkpoint_every = DEFAULT_CHECKPOINT_EVERY
        if checkpoint_every < 1:
            raise JobStoreError("checkpoint_every must be >= 1")
        if max_retries < 0:
            raise JobStoreError("max_retries must be >= 0")
        now = time.time()
        record = JobRecord(
            id=self._allocate_id(),
            spec=spec.to_dict(),
            priority=int(priority),
            checkpoint_every=int(checkpoint_every),
            max_retries=int(max_retries),
            created_at=now,
            updated_at=now,
        )
        self.save(record)
        self.append_event(
            record.id, "submitted",
            priority=record.priority, backend=spec.backend,
            env_id=spec.env_id, max_generations=spec.max_generations,
        )
        return record

    # -- record I/O -------------------------------------------------------

    def save(self, record: JobRecord) -> None:
        record.updated_at = time.time()
        _atomic_write(
            self.record_path(record.id),
            json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
        )

    def load(self, job_id: str) -> JobRecord:
        path = self.record_path(job_id)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise UnknownJobError(
                f"unknown job {job_id!r} in {self.root}"
            ) from None
        except json.JSONDecodeError as exc:
            raise JobStoreError(f"corrupt job record {path}: {exc}") from exc
        return JobRecord.from_dict(data)

    def job_ids(self) -> List[str]:
        if not self.jobs_root.is_dir():
            return []
        return sorted(
            entry.name for entry in self.jobs_root.iterdir()
            if (entry / JOB_FILENAME).exists()
        )

    def list_jobs(self) -> List[JobRecord]:
        return [self.load(job_id) for job_id in self.job_ids()]

    # -- state machine ----------------------------------------------------

    def transition(
        self,
        job_id: str,
        state: str,
        event: Optional[str] = None,
        **updates: Any,
    ) -> JobRecord:
        """Move a job to ``state`` (validated), persist, log an event.

        Extra keyword arguments update record fields; unknown keys are
        rejected by the dataclass.  The event (default: the new state
        name) records the transition with the updated fields attached.
        """
        record = self.load(job_id)
        if state not in JOB_STATES:
            raise JobStoreError(f"unknown job state {state!r}")
        if state not in _ALLOWED_TRANSITIONS[record.state]:
            raise JobStoreError(
                f"job {job_id} cannot go {record.state!r} -> {state!r}"
            )
        record.state = state
        for key, value in updates.items():
            if not hasattr(record, key):
                raise JobStoreError(f"unknown job record field {key!r}")
            setattr(record, key, value)
        self.save(record)
        self.append_event(job_id, event or state, state=state, **updates)
        return record

    # -- events -----------------------------------------------------------

    def append_event(self, job_id: str, event: str, **fields: Any) -> None:
        row = {"ts": time.time(), "event": event, **fields}
        with open(self.events_path(job_id), "a") as handle:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
            handle.flush()

    def read_events(self, job_id: str) -> List[Dict[str, Any]]:
        path = self.events_path(job_id)
        if not path.exists():
            return []
        rows = []
        for line in path.read_text().splitlines():
            if line.strip():
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn tail: same tolerance as metrics.jsonl
        return rows

    # -- preempt / cancel flags -------------------------------------------

    def _flag_path(self, job_id: str, flag: str) -> Path:
        return self.job_dir(job_id) / flag

    def request_preempt(self, job_id: str) -> None:
        """Ask the running worker to yield at its next checkpoint
        boundary (checkpoint -> exit; the scheduler then requeues)."""
        self.load(job_id)  # existence check
        self._flag_path(job_id, PREEMPT_FLAG).touch()

    def preempt_requested(self, job_id: str) -> bool:
        return self._flag_path(job_id, PREEMPT_FLAG).exists()

    def clear_preempt(self, job_id: str) -> None:
        try:
            self._flag_path(job_id, PREEMPT_FLAG).unlink()
        except FileNotFoundError:
            pass

    def cancel_requested(self, job_id: str) -> bool:
        return self._flag_path(job_id, CANCEL_FLAG).exists()

    def clear_cancel(self, job_id: str) -> None:
        try:
            self._flag_path(job_id, CANCEL_FLAG).unlink()
        except FileNotFoundError:
            pass

    def request_cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: waiting jobs cancel immediately; a running job
        gets a flag its worker honours at the next checkpoint boundary
        (the scheduler then records the terminal state)."""
        record = self.load(job_id)
        if record.terminal:
            return record
        if record.state in WAITING_STATES:
            return self.transition(job_id, CANCELLED, event="cancelled")
        self._flag_path(job_id, CANCEL_FLAG).touch()
        self.append_event(job_id, "cancel_requested")
        return self.load(job_id)

    # -- worker error channel ---------------------------------------------

    def error_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "error.txt"

    def write_worker_error(self, job_id: str, text: str) -> None:
        _atomic_write(self.error_path(job_id), text)

    def read_worker_error(self, job_id: str) -> Optional[str]:
        try:
            return self.error_path(job_id).read_text()
        except FileNotFoundError:
            return None

    def clear_worker_error(self, job_id: str) -> None:
        """Drop a previous attempt's ``error.txt`` so the error channel
        always belongs to the worker currently (or last) dispatched."""
        try:
            self.error_path(job_id).unlink()
        except FileNotFoundError:
            pass

    # -- derived status ---------------------------------------------------

    def describe(self, job_id: str) -> Dict[str, Any]:
        """The record plus run-dir-derived progress, JSON-friendly —
        what ``GET /jobs/<id>`` and ``repro job`` report."""
        record = self.load(job_id)
        payload = record.to_dict()
        rd = self.run_dir(job_id)
        rows = rd.read_metrics() if rd.metrics_path.exists() else []
        payload["metrics_rows"] = len(rows)
        if rows:
            payload["best_fitness"] = max(
                row.get("best_fitness", float("-inf")) for row in rows
            )
        latest = rd.latest_checkpoint()
        payload["checkpointed_generation"] = latest[0] if latest else None
        payload["has_champion"] = rd.champion_path.exists()
        payload["complete"] = rd.is_complete
        payload["preempt_requested"] = self.preempt_requested(job_id)
        payload["cancel_requested"] = self.cancel_requested(job_id)
        return payload
