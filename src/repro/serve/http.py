"""The JSON job API — stdlib ``http.server``, zero dependencies.

The server is store-mediated and scheduler-agnostic: every request
reads or writes the on-disk :class:`repro.serve.JobStore`, so it can run
in the same process as the scheduler (``repro serve``), in a different
process, or with no scheduler at all (submissions just queue up).

Routes
------

====== ============================ ========================================
Method Path                         Meaning
====== ============================ ========================================
GET    ``/healthz``                 liveness + job counts by state
GET    ``/jobs``                    every job (records + derived progress)
POST   ``/jobs``                    submit ``{"spec": {...}, "priority": 0,
                                    "checkpoint_every": 5, "max_retries": 2}``
                                    -> ``201 {"id": "job-000001", ...}``
GET    ``/jobs/<id>``               one job's record + progress
POST   ``/jobs/<id>/cancel``        cancel (immediate if waiting, at the
                                    next checkpoint boundary if running)
GET    ``/jobs/<id>/metrics``       the run's ``metrics.jsonl`` as ndjson;
                                    ``?since=G`` streams rows with
                                    ``generation >= G`` (poll-to-follow)
GET    ``/jobs/<id>/events``        the job's event log as ndjson
GET    ``/jobs/<id>/champion``      current champion genome JSON
GET    ``/metrics``                 fleet state in Prometheus text
                                    exposition format (plus the
                                    scheduler's counters/histograms when
                                    the server was given its registry)
====== ============================ ========================================

Errors come back as ``{"error": "..."}`` with 400 (bad request,
including malformed query parameters such as ``?since=abc``),
404 (unknown job/route) or 405 (wrong method) — see the error-semantics
table in ``docs/serve.md``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from .jobs import JOB_STATES, JobStore, JobStoreError, UnknownJobError

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

_NDJSON = "application/x-ndjson"
_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"


class _ApiError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _query_int(params: Dict[str, Any], name: str, default: int) -> int:
    """An integer request parameter, or 400 with the structured error body.

    Every int-typed parameter (query string or JSON body) must come
    through here: a bare ``int()`` on client-controlled input raises
    ValueError out of the handler, and the server 500s with a traceback
    instead of the documented ``{"error": ...}`` shape.
    """
    raw = params.get(name, default)
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise _ApiError(
            400, f"parameter {name!r} must be an integer, got {raw!r}"
        ) from None


class _JobApiHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def store(self) -> JobStore:
        return self.server.store  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:  # quiet by default
        pass

    # -- plumbing ---------------------------------------------------------

    def _send(
        self, status: int, body: bytes, content_type: str = _JSON
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        self._send(
            status,
            (json.dumps(payload, sort_keys=True) + "\n").encode(),
        )

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _ApiError(400, "request body required")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _ApiError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, Optional[str], Optional[str], Dict[str, Any]]:
        parts = urlsplit(self.path)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        segments = [s for s in parts.path.split("/") if s]
        if not segments:
            raise _ApiError(404, "no such route: /")
        head = segments[0]
        job_id = segments[1] if len(segments) > 1 else None
        action = segments[2] if len(segments) > 2 else None
        if len(segments) > 3:
            raise _ApiError(404, f"no such route: {parts.path}")
        return head, job_id, action, query

    # -- GET --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        try:
            head, job_id, action, query = self._route()
            if head == "healthz" and job_id is None:
                self._get_healthz()
            elif head == "jobs" and job_id is None:
                self._send_json(
                    200,
                    {"jobs": [
                        self.store.describe(jid)
                        for jid in self.store.job_ids()
                    ]},
                )
            elif head == "jobs" and action is None:
                self._send_json(200, self.store.describe(job_id))
            elif head == "jobs" and action == "metrics":
                self._get_metrics(job_id, query)
            elif head == "jobs" and action == "events":
                self._get_events(job_id)
            elif head == "jobs" and action == "champion":
                self._get_champion(job_id)
            elif head == "metrics" and job_id is None:
                self._get_prometheus()
            else:
                raise _ApiError(404, f"no such route: {self.path}")
        except _ApiError as exc:
            self._send_json(exc.status, {"error": exc.message})
        except UnknownJobError as exc:
            self._send_json(404, {"error": str(exc.args[0])})
        except JobStoreError as exc:
            self._send_json(400, {"error": str(exc)})

    def _get_prometheus(self) -> None:
        from ..obs import prometheus_text

        registry = getattr(self.server, "registry", None)
        self._send(
            200, prometheus_text(self.store, registry).encode(), _PROM
        )

    def _get_healthz(self) -> None:
        # "other" absorbs states this server version does not know (a
        # job.json written by a newer repro) — health must never 500
        # over an unrecognised label.
        counts = {state: 0 for state in JOB_STATES}
        counts["other"] = 0
        for record in self.store.list_jobs():
            if record.state in counts:
                counts[record.state] += 1
            else:
                counts["other"] += 1
        self._send_json(200, {"ok": True, "jobs": counts})

    def _get_metrics(self, job_id: str, query: Dict[str, Any]) -> None:
        self.store.load(job_id)  # 404 on unknown id
        since = _query_int(query, "since", 0)
        rd = self.store.run_dir(job_id)
        rows = rd.read_metrics() if rd.has_artifacts() else []
        body = "".join(
            json.dumps(row, sort_keys=True) + "\n"
            for row in rows
            if int(row.get("generation", 0)) >= since
        ).encode()
        self._send(200, body, _NDJSON)

    def _get_events(self, job_id: str) -> None:
        self.store.load(job_id)
        body = "".join(
            json.dumps(row, sort_keys=True) + "\n"
            for row in self.store.read_events(job_id)
        ).encode()
        self._send(200, body, _NDJSON)

    def _get_champion(self, job_id: str) -> None:
        self.store.load(job_id)
        path = self.store.run_dir(job_id).champion_path
        if not path.exists():
            raise _ApiError(404, f"{job_id} has no champion yet")
        self._send(200, path.read_bytes())

    # -- POST -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802
        try:
            head, job_id, action, _query = self._route()
            if head == "jobs" and job_id is None:
                self._post_submit()
            elif head == "jobs" and action == "cancel":
                self.store.request_cancel(job_id)
                self._send_json(200, self.store.describe(job_id))
            else:
                raise _ApiError(404, f"no such route: {self.path}")
        except _ApiError as exc:
            self._send_json(exc.status, {"error": exc.message})
        except UnknownJobError as exc:
            self._send_json(404, {"error": str(exc.args[0])})
        except JobStoreError as exc:
            self._send_json(400, {"error": str(exc)})

    def _post_submit(self) -> None:
        payload = self._read_body()
        spec = payload.get("spec")
        if not isinstance(spec, dict):
            raise _ApiError(400, 'body must carry a "spec" object')
        record = self.store.submit(
            spec,
            priority=_query_int(payload, "priority", 0),
            checkpoint_every=payload.get("checkpoint_every"),
            max_retries=_query_int(payload, "max_retries", 2),
        )
        self._send_json(201, self.store.describe(record.id))

    # -- anything else -----------------------------------------------------

    def _method_not_allowed(self) -> None:
        # Without these, http.server answers unknown methods with a 501
        # HTML page — breaking the every-error-is-JSON contract above.
        self._send_json(405, {"error": f"method {self.command} not allowed"})

    do_PUT = _method_not_allowed
    do_DELETE = _method_not_allowed
    do_PATCH = _method_not_allowed


class JobApiServer:
    """A threaded HTTP server over one job store.

    Use as a context manager or call :meth:`start` / :meth:`shutdown`;
    requests are served on a daemon thread so the scheduler loop can
    keep running in the foreground.
    """

    def __init__(
        self,
        store: Union[JobStore, str],
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        registry: Optional[Any] = None,
    ) -> None:
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        #: A :class:`repro.obs.MetricsRegistry` rendered into
        #: ``GET /metrics`` after the store-derived gauges — pass the
        #: scheduler's so scrapes see its counters and histograms.
        self.registry = registry
        self.httpd = ThreadingHTTPServer((host, port), _JobApiHandler)
        self.httpd.store = self.store  # type: ignore[attr-defined]
        self.httpd.registry = registry  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolved when 0 was requested."""
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "JobApiServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "JobApiServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
