"""A tiny urllib client for the :mod:`repro.serve.http` JSON API.

The CLI verbs (``repro submit --url``, ``repro jobs --url``, ``repro
job --url``) and tests go through this; anything else can, too — it is
plain stdlib ``urllib.request`` against the documented routes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional
from urllib.error import HTTPError, URLError
from urllib.parse import quote, urlencode
from urllib.request import Request, urlopen

DEFAULT_TIMEOUT = 30.0


class ServeClientError(RuntimeError):
    """An API call failed; carries the HTTP status when there was one."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """Talk to one ``repro serve`` endpoint, e.g. ``http://127.0.0.1:8642``."""

    def __init__(self, url: str, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.base_url = url.rstrip("/")
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> bytes:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except HTTPError as exc:
            detail = exc.read().decode(errors="replace").strip()
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServeClientError(
                f"{method} {path} failed ({exc.code}): {detail}",
                status=exc.code,
            ) from exc
        except URLError as exc:
            raise ServeClientError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from exc

    def _json(self, method: str, path: str, payload=None) -> Any:
        return json.loads(self._request(method, path, payload))

    # -- API calls --------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def submit(
        self,
        spec: Mapping[str, Any],
        priority: int = 0,
        checkpoint_every: Optional[int] = None,
        max_retries: int = 2,
    ) -> Dict[str, Any]:
        return self._json(
            "POST",
            "/jobs",
            {
                "spec": dict(spec),
                "priority": priority,
                "checkpoint_every": checkpoint_every,
                "max_retries": max_retries,
            },
        )

    def jobs(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{quote(job_id)}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._json("POST", f"/jobs/{quote(job_id)}/cancel")

    def metrics(self, job_id: str, since: int = 0) -> List[Dict[str, Any]]:
        path = f"/jobs/{quote(job_id)}/metrics"
        if since:
            path += "?" + urlencode({"since": since})
        text = self._request("GET", path).decode()
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    def metrics_text(self) -> str:
        """The fleet's ``GET /metrics`` Prometheus text exposition."""
        return self._request("GET", "/metrics").decode()

    def events(self, job_id: str) -> List[Dict[str, Any]]:
        text = self._request("GET", f"/jobs/{quote(job_id)}/events").decode()
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    def champion(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{quote(job_id)}/champion")
