"""RL baselines: DQN with exact op/byte accounting (Table II)."""

from .dqn import (
    DQNAgent,
    DQNConfig,
    OpCounters,
    PAPER_DQN_ACTIONS,
    PAPER_DQN_CONV,
    PAPER_DQN_FC,
    PAPER_DQN_INPUT,
    QNetwork,
    ea_accounting,
    paper_dqn_accounting,
)
from .evolution_strategies import (
    ESConfig,
    ESPolicy,
    ESStats,
    EvolutionStrategies,
    centered_ranks,
)
from .reinforce import PolicyNetwork, ReinforceAgent, ReinforceConfig
from .replay import ReplayMemory, Transition

__all__ = [
    "ESConfig",
    "ESPolicy",
    "ESStats",
    "EvolutionStrategies",
    "centered_ranks",
    "DQNAgent",
    "DQNConfig",
    "OpCounters",
    "PAPER_DQN_ACTIONS",
    "PAPER_DQN_CONV",
    "PAPER_DQN_FC",
    "PAPER_DQN_INPUT",
    "PolicyNetwork",
    "QNetwork",
    "ReinforceAgent",
    "ReinforceConfig",
    "ReplayMemory",
    "Transition",
    "ea_accounting",
    "paper_dqn_accounting",
]
