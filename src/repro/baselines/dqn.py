"""DQN baseline (Mnih et al. 2013 [18]) with exact op/byte accounting.

Table II compares DQN against the EA on four axes — compute, memory,
parallelism, regularity — "both running ATARI".  This module provides:

* :class:`QNetwork` — a NumPy MLP with forward + backprop, counting MACs
  and gradient calculations exactly;
* :class:`DQNAgent` — a complete, runnable DQN (replay memory, target
  network, epsilon-greedy policy, TD(0) regression) usable on the bundled
  RAM environments;
* :func:`paper_dqn_accounting` — the op/byte accounting of the *paper's*
  DQN operating point (the Atari conv stack: 84x84x4 input, conv 16@8x8/4,
  conv 32@4x4/2, fc 256, fc n_actions), reproducing Table II's
  "3M MAC ops in forward pass, 680K gradient calculations in BP" and
  "50 MB for replay memory of 100 entries, 4 MB for parameters and
  activation given mini-batch size of 32".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..envs.base import Environment
from .replay import ReplayMemory


@dataclass
class OpCounters:
    """Exact arithmetic-op accounting for Table II."""

    forward_macs: int = 0
    backward_macs: int = 0
    gradient_calcs: int = 0  # one per parameter per update
    updates: int = 0
    forward_passes: int = 0

    def merge(self, other: "OpCounters") -> None:
        self.forward_macs += other.forward_macs
        self.backward_macs += other.backward_macs
        self.gradient_calcs += other.gradient_calcs
        self.updates += other.updates
        self.forward_passes += other.forward_passes


class QNetwork:
    """Fully-connected Q-network with manual backprop (ReLU hidden)."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        seed: int = 0,
        learning_rate: float = 1e-3,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output layer sizes")
        self.layer_sizes = list(layer_sizes)
        self.learning_rate = learning_rate
        rng = np.random.default_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(
                rng.normal(0.0, scale, size=(fan_in, fan_out)).astype(np.float64)
            )
            self.biases.append(np.zeros(fan_out, dtype=np.float64))
        self.counters = OpCounters()

    # -- accounting ---------------------------------------------------------

    @property
    def num_parameters(self) -> int:
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    @property
    def macs_per_forward(self) -> int:
        return sum(w.size for w in self.weights)

    def parameter_bytes(self, dtype_bytes: int = 4) -> int:
        return self.num_parameters * dtype_bytes

    def activation_bytes(self, batch_size: int, dtype_bytes: int = 4) -> int:
        return sum(batch_size * n * dtype_bytes for n in self.layer_sizes)

    # -- forward/backward ----------------------------------------------------

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Returns (q_values, cached activations per layer)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        activations = [x]
        h = x
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i < len(self.weights) - 1:
                h = np.maximum(h, 0.0)  # ReLU on hidden layers
            activations.append(h)
        self.counters.forward_macs += self.macs_per_forward * x.shape[0]
        self.counters.forward_passes += x.shape[0]
        return h, activations

    def predict(self, x: np.ndarray) -> np.ndarray:
        q, _ = self.forward(x)
        return q

    def train_step(
        self, x: np.ndarray, target_q: np.ndarray, actions: np.ndarray
    ) -> float:
        """One SGD step on 0.5*(Q(s,a) - target)^2 for the taken actions."""
        q, activations = self.forward(x)
        batch = x.shape[0]
        delta = np.zeros_like(q)
        idx = np.arange(batch)
        td_error = q[idx, actions] - target_q
        delta[idx, actions] = td_error / batch

        grad_out = delta
        for layer in reversed(range(len(self.weights))):
            a_in = activations[layer]
            grad_w = a_in.T @ grad_out
            grad_b = grad_out.sum(axis=0)
            self.counters.backward_macs += (
                self.weights[layer].size * batch * 2  # dW and dX products
            )
            if layer > 0:
                grad_in = grad_out @ self.weights[layer].T
                relu_mask = activations[layer] > 0
                grad_out = grad_in * relu_mask
            self.weights[layer] -= self.learning_rate * grad_w
            self.biases[layer] -= self.learning_rate * grad_b
        self.counters.gradient_calcs += self.num_parameters
        self.counters.updates += 1
        return float(0.5 * np.mean(td_error ** 2))

    def copy_weights_from(self, other: "QNetwork") -> None:
        self.weights = [w.copy() for w in other.weights]
        self.biases = [b.copy() for b in other.biases]


@dataclass
class DQNConfig:
    hidden_sizes: Tuple[int, ...] = (64, 64)
    replay_capacity: int = 10_000
    batch_size: int = 32
    gamma: float = 0.99
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 5_000
    target_update_interval: int = 250
    learning_rate: float = 1e-3
    warmup_transitions: int = 200


class DQNAgent:
    """Complete DQN: the paper's RL comparison point, runnable end to end."""

    def __init__(self, env: Environment, config: Optional[DQNConfig] = None,
                 seed: int = 0) -> None:
        self.env = env
        self.config = config or DQNConfig()
        layer_sizes = [env.num_observations, *self.config.hidden_sizes, env.num_actions]
        self.online = QNetwork(layer_sizes, seed=seed,
                               learning_rate=self.config.learning_rate)
        self.target = QNetwork(layer_sizes, seed=seed + 1)
        self.target.copy_weights_from(self.online)
        self.memory = ReplayMemory(self.config.replay_capacity, seed=seed)
        self.rng = np.random.default_rng(seed)
        self.steps = 0

    @property
    def epsilon(self) -> float:
        cfg = self.config
        frac = min(1.0, self.steps / max(1, cfg.epsilon_decay_steps))
        return cfg.epsilon_start + frac * (cfg.epsilon_end - cfg.epsilon_start)

    def select_action(self, state: np.ndarray) -> int:
        if self.rng.random() < self.epsilon:
            return int(self.rng.integers(self.env.num_actions))
        q = self.online.predict(state.ravel())
        return int(np.argmax(q[0]))

    def _learn(self) -> Optional[float]:
        cfg = self.config
        if len(self.memory) < max(cfg.batch_size, cfg.warmup_transitions):
            return None
        batch = self.memory.sample(cfg.batch_size)
        states = np.stack([t.state.ravel() for t in batch])
        next_states = np.stack([t.next_state.ravel() for t in batch])
        actions = np.array([t.action for t in batch])
        rewards = np.array([t.reward for t in batch])
        dones = np.array([t.done for t in batch])
        next_q = self.target.predict(next_states)
        targets = rewards + cfg.gamma * (1.0 - dones) * next_q.max(axis=1)
        loss = self.online.train_step(states, targets, actions)
        if self.online.counters.updates % cfg.target_update_interval == 0:
            self.target.copy_weights_from(self.online)
        return loss

    def train_episode(self, max_steps: Optional[int] = None) -> float:
        state = self.env.reset()
        total_reward = 0.0
        limit = max_steps if max_steps is not None else self.env.max_episode_steps
        for _ in range(limit):
            action = self.select_action(state)
            next_state, reward, done, _ = self.env.step(action)
            self.memory.push(state, action, reward, next_state, done)
            self._learn()
            state = next_state
            total_reward += reward
            self.steps += 1
            if done:
                break
        return total_reward

    def evaluate_episode(self, max_steps: Optional[int] = None) -> float:
        state = self.env.reset()
        total = 0.0
        limit = max_steps if max_steps is not None else self.env.max_episode_steps
        for _ in range(limit):
            q = self.online.predict(state.ravel())
            state, reward, done, _ = self.env.step(int(np.argmax(q[0])))
            total += reward
            if done:
                break
        return total


# ---------------------------------------------------------------------------
# Table II accounting at the paper's operating point
# ---------------------------------------------------------------------------

#: The classic Atari DQN stack [18]: input 84x84x4, conv 16@8x8 stride 4,
#: conv 32@4x4 stride 2, fc 256, fc n_actions.
PAPER_DQN_INPUT = (84, 84, 4)
PAPER_DQN_CONV = [  # (filters, kernel, stride)
    (16, 8, 4),
    (32, 4, 2),
]
PAPER_DQN_FC = 256
PAPER_DQN_ACTIONS = 18


def _conv_output(size: int, kernel: int, stride: int) -> int:
    return (size - kernel) // stride + 1


def paper_dqn_accounting(
    replay_entries: int = 100, batch_size: int = 32
) -> Dict[str, float]:
    """Op/byte accounting of the paper's DQN config (Table II, left column).

    MACs are counted layer-exactly; "gradient calculations" is the
    parameter count (one gradient per weight per backward pass), matching
    the paper's 680 K figure; replay entries store two float32 frame
    stacks each.
    """
    h, w, c = PAPER_DQN_INPUT
    macs = 0
    params = 0
    activations = h * w * c
    in_h, in_w, in_c = h, w, c
    for filters, kernel, stride in PAPER_DQN_CONV:
        out_h = _conv_output(in_h, kernel, stride)
        out_w = _conv_output(in_w, kernel, stride)
        macs += out_h * out_w * filters * kernel * kernel * in_c
        params += filters * kernel * kernel * in_c + filters
        activations += out_h * out_w * filters
        in_h, in_w, in_c = out_h, out_w, filters
    flat = in_h * in_w * in_c
    macs += flat * PAPER_DQN_FC
    params += flat * PAPER_DQN_FC + PAPER_DQN_FC
    activations += PAPER_DQN_FC
    macs += PAPER_DQN_FC * PAPER_DQN_ACTIONS
    params += PAPER_DQN_FC * PAPER_DQN_ACTIONS + PAPER_DQN_ACTIONS
    activations += PAPER_DQN_ACTIONS

    frame_bytes = h * w * c * 4  # float32 stacked frames
    replay_bytes = replay_entries * (2 * frame_bytes + 17)
    param_bytes = params * 4
    activation_bytes = activations * batch_size * 4
    return {
        "forward_macs": macs,
        "gradient_calcs": params,
        "replay_bytes": replay_bytes,
        "param_activation_bytes": param_bytes + activation_bytes,
        "parallelism": "MAC and gradient updates parallel per layer",
        "regularity": "dense CNN, high reuse",
    }


def ea_accounting(
    inference_macs_per_generation: int,
    evolution_ops_per_generation: int,
    generation_bytes: int,
) -> Dict[str, float]:
    """The EA column of Table II, from measured workload aggregates."""
    return {
        "inference_macs": inference_macs_per_generation,
        "evolution_ops": evolution_ops_per_generation,
        "generation_bytes": generation_bytes,
        "parallelism": "GLP and PLP",
        "regularity": "highly sparse and irregular networks",
    }
