"""Experience replay memory for the DQN baseline (Table II).

Tracks its own byte footprint exactly, since Table II's comparison point
is "50 MB for replay memory of 100 entries" for DQN vs "<1 MB to fit
entire generation" for the EA.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class Transition:
    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool

    @property
    def nbytes(self) -> int:
        # two state tensors + action/reward/done scalars
        return int(self.state.nbytes + self.next_state.nbytes + 8 + 8 + 1)


class ReplayMemory:
    """Fixed-capacity ring buffer of transitions."""

    def __init__(self, capacity: int, seed: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: List[Transition] = []
        self._cursor = 0
        self.rng = random.Random(seed)

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> None:
        transition = Transition(
            np.asarray(state, dtype=np.float32),
            int(action),
            float(reward),
            np.asarray(next_state, dtype=np.float32),
            bool(done),
        )
        if len(self._buffer) < self.capacity:
            self._buffer.append(transition)
        else:
            self._buffer[self._cursor] = transition
        self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, batch_size: int) -> List[Transition]:
        if batch_size > len(self._buffer):
            raise ValueError(
                f"cannot sample {batch_size} from {len(self._buffer)} transitions"
            )
        return self.rng.sample(self._buffer, batch_size)

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)
