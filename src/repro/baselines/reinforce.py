"""REINFORCE policy-gradient baseline.

The paper's core contrast (Section II-C): "RL perturbs the action space
and uses backpropagation (which is computation and memory heavy) to
compute parameter updates, while EA perturbs the parameter space ...
directly."  This module is the minimal honest member of the
backprop-per-reward family: Monte-Carlo policy gradient with a running
baseline, counting forward MACs, backward MACs and gradient calculations
so its compute/memory profile can sit next to NEAT's in Table II style
comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..envs.base import Environment
from ..envs.spaces import Discrete
from .dqn import OpCounters


@dataclass
class ReinforceConfig:
    hidden_sizes: Tuple[int, ...] = (32,)
    learning_rate: float = 1e-2
    gamma: float = 0.99
    baseline_momentum: float = 0.9
    max_steps: Optional[int] = None


class PolicyNetwork:
    """Softmax policy MLP with manual backprop and op accounting."""

    def __init__(self, layer_sizes: Sequence[int], seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.layer_sizes = list(layer_sizes)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self.counters = OpCounters()

    @property
    def num_parameters(self) -> int:
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    @property
    def macs_per_forward(self) -> int:
        return sum(w.size for w in self.weights)

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        h = np.atleast_2d(np.asarray(x, dtype=np.float64))
        activations = [h]
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i < len(self.weights) - 1:
                h = np.tanh(h)
            activations.append(h)
        logits = h - h.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        self.counters.forward_macs += self.macs_per_forward * activations[0].shape[0]
        self.counters.forward_passes += activations[0].shape[0]
        return probs, activations

    def policy_gradient_step(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        advantages: np.ndarray,
        learning_rate: float,
    ) -> None:
        """One REINFORCE update: grad log pi(a|s) * advantage."""
        probs, activations = self.forward(states)
        batch = states.shape[0]
        grad_logits = probs.copy()
        grad_logits[np.arange(batch), actions] -= 1.0
        grad_logits *= advantages[:, None] / batch

        grad_out = grad_logits
        for layer in reversed(range(len(self.weights))):
            a_in = activations[layer]
            grad_w = a_in.T @ grad_out
            grad_b = grad_out.sum(axis=0)
            self.counters.backward_macs += self.weights[layer].size * batch * 2
            if layer > 0:
                grad_in = grad_out @ self.weights[layer].T
                grad_out = grad_in * (1.0 - activations[layer] ** 2)  # tanh'
            self.weights[layer] -= learning_rate * grad_w
            self.biases[layer] -= learning_rate * grad_b
        self.counters.gradient_calcs += self.num_parameters
        self.counters.updates += 1


class ReinforceAgent:
    """Monte-Carlo policy gradient on a Discrete-action environment."""

    def __init__(self, env: Environment, config: Optional[ReinforceConfig] = None,
                 seed: int = 0) -> None:
        if not isinstance(env.action_space, Discrete):
            raise TypeError("REINFORCE baseline supports Discrete actions only")
        self.env = env
        self.config = config or ReinforceConfig()
        self.policy = PolicyNetwork(
            [env.num_observations, *self.config.hidden_sizes, env.num_actions],
            seed=seed,
        )
        self.rng = np.random.default_rng(seed)
        self.baseline = 0.0
        self.history: List[float] = []
        self.env_steps = 0

    def _returns(self, rewards: List[float]) -> np.ndarray:
        out = np.zeros(len(rewards))
        running = 0.0
        for t in reversed(range(len(rewards))):
            running = rewards[t] + self.config.gamma * running
            out[t] = running
        return out

    def train_episode(self, episode_seed: Optional[int] = None) -> float:
        if episode_seed is not None:
            self.env.seed(episode_seed)
        obs = self.env.reset()
        states: List[np.ndarray] = []
        actions: List[int] = []
        rewards: List[float] = []
        limit = self.config.max_steps or self.env.max_episode_steps
        for _ in range(limit):
            probs, _ = self.policy.forward(obs.ravel())
            action = int(self.rng.choice(len(probs[0]), p=probs[0]))
            states.append(obs.ravel().copy())
            actions.append(action)
            obs, reward, done, _info = self.env.step(action)
            rewards.append(reward)
            self.env_steps += 1
            if done:
                break
        total = float(sum(rewards))
        returns = self._returns(rewards)
        cfg = self.config
        self.baseline = (
            cfg.baseline_momentum * self.baseline
            + (1 - cfg.baseline_momentum) * returns.mean()
        )
        advantages = returns - self.baseline
        scale = advantages.std()
        if scale > 1e-8:
            advantages = advantages / scale
        self.policy.policy_gradient_step(
            np.stack(states), np.array(actions), advantages, cfg.learning_rate
        )
        self.history.append(total)
        return total

    def train(self, episodes: int, target: Optional[float] = None) -> float:
        best = float("-inf")
        for episode in range(episodes):
            total = self.train_episode(episode_seed=episode)
            best = max(best, total)
            if target is not None and total >= target:
                break
        return best

    def greedy_episode(self, episode_seed: Optional[int] = None) -> float:
        if episode_seed is not None:
            self.env.seed(episode_seed)
        obs = self.env.reset()
        total = 0.0
        limit = self.config.max_steps or self.env.max_episode_steps
        for _ in range(limit):
            probs, _ = self.policy.forward(obs.ravel())
            obs, reward, done, _info = self.env.step(int(np.argmax(probs[0])))
            total += reward
            if done:
                break
        return total
