"""OpenAI Evolution Strategies baseline (Salimans et al. 2017, ref. [3]).

The paper repeatedly anchors against this work ("Evolution strategies as
a scalable alternative to reinforcement learning"): ES perturbs a *fixed*
topology's flat parameter vector with Gaussian noise, estimates the
gradient from episode returns, and needs no backpropagation — but unlike
NEAT it never evolves structure, and its per-generation compute is
population x full-network inference.

Implemented with antithetic (mirrored) sampling, rank centering, and
exact op accounting so it can be compared against NEAT's GLP/PLP profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..envs.base import Environment


@dataclass
class ESConfig:
    population: int = 32          # perturbation pairs per generation
    sigma: float = 0.1            # perturbation scale
    learning_rate: float = 0.03
    hidden_sizes: Tuple[int, ...] = (16,)
    episodes_per_eval: int = 1
    max_steps: Optional[int] = None


@dataclass
class ESStats:
    generations: int = 0
    episodes: int = 0
    env_steps: int = 0
    inference_macs: int = 0
    parameter_updates: int = 0  # one per parameter per generation

    def merge(self, other: "ESStats") -> None:
        self.generations += other.generations
        self.episodes += other.episodes
        self.env_steps += other.env_steps
        self.inference_macs += other.inference_macs
        self.parameter_updates += other.parameter_updates


class ESPolicy:
    """Fixed-topology MLP policy over a flat parameter vector."""

    def __init__(self, num_inputs: int, num_outputs: int,
                 hidden_sizes: Sequence[int]) -> None:
        self.layer_sizes = [num_inputs, *hidden_sizes, num_outputs]
        self.shapes: List[Tuple[int, int]] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            self.shapes.append((fan_in, fan_out))
        self.num_parameters = sum(
            fan_in * fan_out + fan_out for fan_in, fan_out in self.shapes
        )
        self.macs_per_forward = sum(fi * fo for fi, fo in self.shapes)

    def unflatten(self, theta: np.ndarray) -> List[Tuple[np.ndarray, np.ndarray]]:
        layers = []
        offset = 0
        for fan_in, fan_out in self.shapes:
            w = theta[offset : offset + fan_in * fan_out].reshape(fan_in, fan_out)
            offset += fan_in * fan_out
            b = theta[offset : offset + fan_out]
            offset += fan_out
            layers.append((w, b))
        return layers

    def forward(self, theta: np.ndarray, obs: np.ndarray) -> np.ndarray:
        h = np.asarray(obs, dtype=np.float64).ravel()
        layers = self.unflatten(theta)
        for i, (w, b) in enumerate(layers):
            h = h @ w + b
            if i < len(layers) - 1:
                h = np.tanh(h)
        return h


def centered_ranks(returns: np.ndarray) -> np.ndarray:
    """Rank transformation of Salimans et al.: robust to return scale."""
    ranks = np.empty(len(returns), dtype=np.float64)
    ranks[np.argsort(returns)] = np.arange(len(returns))
    if len(returns) == 1:
        return np.zeros(1)
    return ranks / (len(returns) - 1) - 0.5


class EvolutionStrategies:
    """Antithetic OpenAI-ES over one of the bundled environments."""

    def __init__(self, env: Environment, config: Optional[ESConfig] = None,
                 seed: int = 0) -> None:
        self.env = env
        self.config = config or ESConfig()
        self.policy = ESPolicy(
            env.num_observations, env.num_actions, self.config.hidden_sizes
        )
        self.rng = np.random.default_rng(seed)
        self.theta = 0.1 * self.rng.standard_normal(self.policy.num_parameters)
        self.stats = ESStats()
        self.history: List[float] = []

    # ------------------------------------------------------------------

    def _rollout(self, theta: np.ndarray, episode_seed: int) -> float:
        total = 0.0
        for episode in range(self.config.episodes_per_eval):
            self.env.seed(episode_seed + episode)
            obs = self.env.reset()
            limit = self.config.max_steps or self.env.max_episode_steps
            for _ in range(limit):
                logits = self.policy.forward(self.theta_view(theta), obs)
                self.stats.inference_macs += self.policy.macs_per_forward
                action = self._to_action(logits)
                obs, reward, done, _info = self.env.step(action)
                total += reward
                self.stats.env_steps += 1
                if done:
                    break
            self.stats.episodes += 1
        return total / self.config.episodes_per_eval

    @staticmethod
    def theta_view(theta: np.ndarray) -> np.ndarray:
        return theta

    def _to_action(self, logits: np.ndarray):
        from ..envs.spaces import Box, Discrete

        space = self.env.action_space
        if isinstance(space, Discrete):
            return int(np.argmax(logits[: space.n]))
        if isinstance(space, Box):
            return np.clip(
                logits[: space.flat_dim],
                space.low.ravel(),
                space.high.ravel(),
            )
        raise TypeError(f"unsupported action space {space!r}")

    # ------------------------------------------------------------------

    def run_generation(self, generation_seed: int = 0) -> float:
        """One ES update; returns the unperturbed policy's return."""
        cfg = self.config
        noise = self.rng.standard_normal((cfg.population, self.policy.num_parameters))
        returns = np.zeros(2 * cfg.population)
        for i in range(cfg.population):
            # antithetic pair shares an episode seed for variance reduction
            seed = generation_seed * 100_003 + i
            returns[2 * i] = self._rollout(self.theta + cfg.sigma * noise[i], seed)
            returns[2 * i + 1] = self._rollout(self.theta - cfg.sigma * noise[i], seed)
        ranked = centered_ranks(returns)
        advantage = ranked[0::2] - ranked[1::2]
        gradient = advantage @ noise / (cfg.population * cfg.sigma)
        self.theta = self.theta + cfg.learning_rate * gradient
        self.stats.parameter_updates += self.policy.num_parameters
        self.stats.generations += 1
        score = self._rollout(self.theta, generation_seed * 100_003 + 999)
        self.history.append(score)
        return score

    def run(self, generations: int, target: Optional[float] = None) -> float:
        best = float("-inf")
        for generation in range(generations):
            score = self.run_generation(generation_seed=generation)
            best = max(best, score)
            if target is not None and score >= target:
                break
        return best
