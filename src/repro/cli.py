"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``envs``                      list the environment suite (Table I)
``backends``                  list the registered experiment backends
``run [ENV]``                 evolve ENV on any registered backend
``infer CHAMPION ENV``        roll out a saved champion
``characterise [ENV]``        Fig. 4/5-style workload characterisation
``platforms``                 the platform registry (``--json`` for the
                              machine-readable spec dump)
``scenarios``                 the scenario registry (environment variants,
                              perturbations, curricula; ``--json`` dumps
                              the specs)
``platforms ENV``             Fig. 9-style platform runtime/energy matrix
``design-space``              Fig. 8 power/area sweep of the SoC
``dse --sweep FILE``          declarative design-space sweep (repro.dse):
                              cached, parallel, Pareto/groupby/export;
                              axes include ``platform.*`` fields

``run [ENV] --run-dir DIR``       persist run artifacts (repro.runs)
``run --resume DIR``              continue a run from its last checkpoint
``report DIR [DIR...]``           rebuild metric tables from artifacts

``serve ROOT``                    run the evolution-job scheduler (and
                                  HTTP/JSON API) over a serve root
``submit [ENV] --root|--url``     queue an experiment as a job
``jobs --root|--url``             list jobs and their progress
``job ID --root|--url``           inspect / follow / cancel one job
``top ROOT``                      live one-screen fleet view
``trace RUN_DIR``                 phase breakdown of a traced run
                                  (``--export chrome`` for Perfetto)

``run``, ``characterise`` and ``platforms`` are spec-driven: flags build
an :class:`repro.api.ExperimentSpec`, or ``--spec FILE`` loads one from
JSON (explicit flags override the file).  ``--backend`` selects the
substrate (``software``, ``soc``, ``analytical:<platform>``) and
``--workers N`` parallelises fitness evaluation bit-identically to the
serial path.

``--run-dir DIR`` records the run durably (spec, per-generation
``metrics.jsonl``, periodic full-state checkpoints, champion) and
``--resume DIR`` continues an interrupted run **bit-identically** to one
that was never interrupted; ``report`` re-derives fitness-curve and
hardware-metric tables from those artifacts without re-simulating
(see :mod:`repro.runs` and ``docs/runs.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from .analysis.reporting import (
    fmt_bytes,
    fmt_joules,
    fmt_seconds,
    render_table,
)

#: Fallbacks applied when neither a flag nor a spec file sets the field.
_SPEC_DEFAULTS = {
    "backend": "software",
    "max_generations": 10,
    "pop_size": 50,
    "episodes": 1,
    "seed": 0,
    "workers": 1,
}


def _resolve_platform_flag(value: str):
    """``--platform`` FILE-or-name -> (PlatformSpec | None, backend | None).

    A JSON file loads as a :class:`repro.platforms.PlatformSpec`; a
    registered name resolves through the registry.  Spec-backed entries
    embed on the experiment spec (the declarative path); factory-backed
    custom registrations have no spec, so they run as the
    ``analytical:<name>`` backend instead.
    """
    from pathlib import Path

    from .platforms import PlatformSpec, PlatformSpecError, platform_spec

    if Path(value).is_file():
        pspec = PlatformSpec.load(value)
    else:
        try:
            pspec = platform_spec(value)
        except PlatformSpecError:
            return None, f"analytical:{value}"  # factory-backed entry
    return pspec, ("soc" if pspec.kind == "soc" else "analytical")


def _resolve_scenario_flag(value: str):
    """``--scenario`` FILE-or-name -> :class:`repro.scenarios.ScenarioSpec`.

    A JSON file loads as a ScenarioSpec; anything else resolves through
    the scenario registry (see ``repro scenarios``).
    """
    from pathlib import Path

    from .scenarios import ScenarioSpec, get_scenario

    if Path(value).is_file():
        return ScenarioSpec.load(value)
    return get_scenario(value)


def _spec_from_args(args: argparse.Namespace):
    """Build the experiment spec from CLI flags and/or a spec file."""
    from .api import ExperimentSpec

    backend = getattr(args, "backend", None)
    if getattr(args, "hardware", False):
        if backend is not None and backend != "soc":
            raise SystemExit(
                f"error: --hardware conflicts with --backend {backend}"
            )
        backend = "soc"
    platform = None
    if getattr(args, "platform", None) is not None:
        platform, platform_backend = _resolve_platform_flag(args.platform)
        if backend is None:
            backend = platform_backend
        elif platform is None and backend != platform_backend:
            # Factory-backed platforms run only as their analytical
            # backend; a conflicting explicit --backend would silently
            # drop the platform request, so reject it instead.
            raise SystemExit(
                f"error: --platform {args.platform} runs as "
                f"--backend {platform_backend}; it conflicts with "
                f"--backend {backend}"
            )
    scenario = None
    if getattr(args, "scenario", None) is not None:
        scenario = _resolve_scenario_flag(args.scenario)
    overrides = {
        key: value
        for key, value in {
            "env_id": args.env,
            "backend": backend,
            "platform": platform,
            "scenario": scenario,
            "max_generations": args.generations,
            "pop_size": args.population,
            "episodes": args.episodes,
            "seed": args.seed,
            "max_steps": args.max_steps,
            "workers": args.workers,
            "vectorizer": args.vectorizer,
            "fitness_threshold": args.fitness_threshold,
        }.items()
        if value is not None
    }
    if args.spec:
        spec = ExperimentSpec.load(args.spec)
        return spec.replace(**overrides) if overrides else spec
    if "env_id" not in overrides:
        raise SystemExit("error: an environment id or --spec FILE is required")
    return ExperimentSpec(**{**_SPEC_DEFAULTS, **overrides})


def _cmd_envs(_args: argparse.Namespace) -> int:
    from .envs import available, make

    rows = []
    for env_id in available():
        env = make(env_id)
        rows.append([
            env_id, env.num_observations, env.num_actions, env.max_episode_steps,
        ])
    print(render_table(
        ["Environment", "observations", "actions", "step limit"], rows,
        title="Environment suite (Table I)",
    ))
    return 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    from .api import available_backends

    print("Registered experiment backends:")
    for name in available_backends():
        print(f"  {name}")
    return 0


#: Spec-building ``run`` flags that conflict with ``--resume`` (the spec
#: comes from the run directory; only the generation budget may change).
_RESUME_CONFLICTS = (
    "env", "spec", "backend", "platform", "scenario", "population",
    "episodes", "seed", "max_steps", "workers", "vectorizer",
    "fitness_threshold",
)


def _cmd_run(args: argparse.Namespace) -> int:
    from .api import Experiment

    if args.resume:
        from .runs import RunDir, resume_run

        conflicts = [
            name for name in _RESUME_CONFLICTS
            if getattr(args, name, None) is not None
        ]
        if getattr(args, "hardware", False):
            conflicts.append("hardware")
        if args.run_dir:
            conflicts.append("run_dir")
        if conflicts:
            raise SystemExit(
                "error: --resume takes the spec from the run directory; "
                "only --generations may be overridden "
                f"(conflicting: {', '.join(sorted(conflicts))})"
            )
        run_dir = RunDir(args.resume)
        latest = run_dir.latest_checkpoint()
        result = resume_run(
            run_dir,
            max_generations=args.generations,
            checkpoint_every=args.checkpoint_every,
            trace=True if args.trace else None,
        )
        spec = result.spec
        if latest is not None:
            print(f"resumed {args.resume} from checkpoint at generation "
                  f"{latest[0]}")
        else:
            print(f"restarted {args.resume} (no checkpoint recorded yet)")
    else:
        spec = _spec_from_args(args)
        if args.run_dir:
            from .runs import run_in_dir

            result = run_in_dir(
                spec,
                args.run_dir,
                checkpoint_every=args.checkpoint_every,
                trace=True if args.trace else None,
            )
        elif args.trace:
            raise SystemExit(
                "error: --trace writes telemetry.jsonl into the run "
                "directory; add --run-dir DIR (or --resume DIR)"
            )
        else:
            result = Experiment(spec).run()

    if spec.backend == "soc":
        # Legacy "[hardware]" label kept for scripts that grep it.
        print(
            f"[hardware] {spec.env_id}: best fitness "
            f"{result.best_fitness:.2f} after {result.generations} "
            f"generations (converged={result.converged})"
        )
        print(
            f"  chip time {fmt_seconds(result.total_runtime_s)}, "
            f"energy {fmt_joules(result.total_energy_j)}"
        )
    elif spec.backend == "software":
        print(
            f"[software] {spec.env_id}: best fitness "
            f"{result.best_fitness:.2f} after {result.generations} "
            f"generations (converged={result.converged})"
        )
        conns, nodes = result.champion.size()
        print(f"  champion: {conns} enabled connections, {nodes} nodes")
    else:
        print(
            f"[{result.backend}] {spec.env_id}: best fitness "
            f"{result.best_fitness:.2f} after {result.generations} "
            f"generations (converged={result.converged})"
        )
        print(
            f"  modelled platform time {fmt_seconds(result.total_runtime_s)}, "
            f"energy {fmt_joules(result.total_energy_j)}"
        )
    if spec.workers > 1 and spec.backend != "soc":
        # The SoC model is a serial chip simulation; only the software
        # and analytical paths evaluate fitness in parallel.
        print(f"  fitness evaluated with {spec.workers} workers "
              f"(bit-identical to serial)")
    if spec.vectorizer == "numpy":
        if spec.backend == "soc":
            # The SoC model simulates ADAM's own packed matrix-vector
            # waves; the software vectorizer does not apply there.
            print("  note: --vectorizer numpy is ignored by the soc backend")
        else:
            print("  inference vectorized (compiled numpy batch engine)")
    run_target = args.resume or args.run_dir
    if run_target:
        print(f"  artifacts in {run_target} "
              f"(resume: 'repro run --resume {run_target}'; "
              f"tables: 'repro report {run_target}')")
        if args.trace:
            print(f"  telemetry in {run_target}/telemetry.jsonl "
                  f"(inspect: 'repro trace {run_target}')")
    if args.show:
        from .analysis.netviz import describe_genome

        print(describe_genome(result.champion, result.neat_config.genome))
    if args.save:
        from .neat.serialize import save_genome

        save_genome(result.champion, args.save, config=result.neat_config)
        print(f"  champion saved to {args.save}")
    if args.save_spec:
        spec.save(args.save_spec)
        print(f"  spec saved to {args.save_spec}")
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    """Load a saved champion and roll it out in its environment."""
    from .envs import make, run_episode
    from .neat.network import FeedForwardNetwork
    from .neat.serialize import load_genome_with_config

    genome, config = load_genome_with_config(args.champion)
    network = FeedForwardNetwork.create(genome, config.genome)
    env = make(args.env)
    rewards = []
    for episode in range(args.episodes):
        env.seed(args.seed + episode)
        result = run_episode(network, env, max_steps=args.max_steps)
        rewards.append(result.total_reward)
        print(f"episode {episode}: reward {result.total_reward:.2f} "
              f"in {result.steps} steps")
    print(f"mean reward over {len(rewards)} episodes: "
          f"{sum(rewards) / len(rewards):.2f}")
    return 0


def _require_software_backend(spec, command: str) -> None:
    """characterise/platforms instrument the software NEAT loop; other
    backends would be silently misleading, so reject them explicitly."""
    if spec.backend != "software":
        raise SystemExit(
            f"error: '{command}' characterises the software path; "
            f"--backend {spec.backend} is not supported here "
            f"(use 'run --backend {spec.backend}' instead)"
        )


def _cmd_characterise(args: argparse.Namespace) -> int:
    from .core import TraceRecorder

    spec = _spec_from_args(args)
    _require_software_backend(spec, "characterise")
    recorder = TraceRecorder.from_spec(spec)
    trace = recorder.record(spec.max_generations)
    rows = []
    for w in trace.workloads:
        rows.append([
            w.generation, w.total_nodes, w.total_connections,
            w.evolution_ops, fmt_bytes(w.footprint_bytes),
            w.fittest_parent_reuse, w.env_steps,
        ])
    print(render_table(
        ["gen", "node genes", "conn genes", "ops", "footprint",
         "fittest reuse", "env steps"],
        rows,
        title=f"Workload characterisation: {spec.env_id} "
              f"(population {spec.pop_size})",
    ))
    return 0


def _params_summary(spec) -> str:
    """One compact ``key=value`` line of a platform spec's parameters."""
    import dataclasses

    parts = []
    for field in dataclasses.fields(type(spec.params)):
        value = getattr(spec.params, field.name)
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{field.name}={value}")
    return ", ".join(parts)


def _cmd_platforms(args: argparse.Namespace) -> int:
    from .platforms import registered_platforms

    if args.json:
        if args.env is not None or args.spec:
            raise SystemExit(
                "error: --json prints the platform registry; it does not "
                "combine with an environment or --spec (drop one)"
            )
        import json

        payload = {
            name: (spec.to_dict() if spec is not None else None)
            for name, spec in registered_platforms().items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if args.env is None and not args.spec:
        rows = []
        for name, spec in registered_platforms().items():
            if spec is None:
                rows.append([name, "custom", "(factory-backed cost model)"])
            else:
                rows.append([name, spec.kind, _params_summary(spec)])
        print(render_table(
            ["platform", "kind", "parameters"], rows,
            title="Platform registry (repro.platforms; Table III + soc)",
        ))
        print(
            "\nRun one with 'repro run ENV --platform NAME' or "
            "'--backend analytical:NAME'; add your own with "
            "repro.platforms.register_platform (see docs/platforms.md)."
        )
        return 0

    from .core import TraceRecorder
    from .platforms import all_platforms

    spec = _spec_from_args(args)
    _require_software_backend(spec, "platforms")
    trace = TraceRecorder.from_spec(spec).record(spec.max_generations)
    workload = trace.mean_workload()
    rows = []
    for platform in all_platforms():
        inference = platform.inference_cost(workload)
        evolution = platform.evolution_cost(workload)
        rows.append([
            platform.name,
            fmt_seconds(inference.runtime_s),
            fmt_joules(inference.energy_j),
            fmt_seconds(evolution.runtime_s),
            fmt_joules(evolution.energy_j),
            fmt_bytes(platform.memory_footprint_bytes(workload)),
        ])
    print(render_table(
        ["platform", "inf time/gen", "inf energy/gen",
         "evo time/gen", "evo energy/gen", "footprint"],
        rows,
        title=f"Platform comparison on {spec.env_id} (Fig. 9 style)",
    ))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .scenarios import registered_scenarios

    if args.json:
        import json

        payload = {
            name: scenario.to_dict()
            for name, scenario in registered_scenarios().items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = []
    for name, scenario in registered_scenarios().items():
        params = ", ".join(
            f"{k}={v:.4g}" for k, v in sorted(scenario.params.items())
        ) or "-"
        perturbations = ", ".join(
            p.kind for p in scenario.perturbations
        ) or "-"
        stages = (
            f"{scenario.stage_count()} ({scenario.curriculum.mode})"
            if scenario.curriculum is not None
            else "-"
        )
        rows.append([name, scenario.env_id, params, perturbations, stages])
    print(render_table(
        ["scenario", "environment", "params", "perturbations", "stages"],
        rows,
        title="Scenario registry (repro.scenarios)",
    ))
    print(
        "\nRun one with 'repro run --scenario NAME' (or a ScenarioSpec "
        "JSON file); add your own with "
        "repro.scenarios.register_scenario (see docs/scenarios.md)."
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Rebuild metric tables from run directories — artifacts only, no
    re-simulation."""
    from .runs import (
        export_reports,
        fitness_table,
        hardware_table,
        load_run,
        scenario_table,
        summary_table,
    )

    reports = [load_run(path) for path in args.dirs]
    headers, rows = summary_table(reports)
    print(render_table(headers, rows, title="Run summary"))
    if not args.summary_only:
        for report in reports:
            print()
            headers, rows = fitness_table(report)
            print(render_table(
                headers, rows,
                title=f"{report.name}: fitness curve "
                      f"({report.spec.env_id}, {report.spec.backend})",
            ))
            print()
            headers, rows = hardware_table(report)
            print(render_table(
                headers, rows, title=f"{report.name}: workload and cost",
            ))
            headers, rows = scenario_table(report)
            if rows:
                print()
                print(render_table(
                    headers, rows,
                    title=f"{report.name}: curriculum (stage / "
                          f"forgetting / recovery)",
                ))
    if args.export:
        csv_path, json_path = export_reports(reports, args.export)
        print(f"\nexported {csv_path} and {json_path}")
    return 0


def _dse_report(args: argparse.Namespace, sweep, result) -> None:
    """The shared tail of every dse mode: table, frontier, groups, export."""
    from .dse import parse_objectives

    headers, rows = result.table()
    print()
    print(render_table(headers, rows, title=f"Design space: {args.sweep}"))
    print(
        f"\nevaluated {result.evaluated}, "
        f"cache hits {result.cache_hits}/{result.points}"
        + (f" (cache: {result.cache_dir})" if result.cache_dir else "")
    )
    if args.pareto:
        objectives = parse_objectives(args.pareto)
        front = result.pareto_front(objectives)
        legend = ", ".join(f"{k}:{v}" for k, v in objectives.items())
        keep = sweep.axis_names + list(objectives)

        def fmt(value):
            return f"{value:.6g}" if isinstance(value, float) else value

        print()
        print(render_table(
            keep,
            [[fmt(row.get(name)) for name in keep] for row in front],
            title=f"Pareto frontier ({legend})",
        ))
    if args.group_by:
        axis, _, metric = args.group_by.partition(":")
        metric = metric or "fitness"
        groups = result.group_by(axis, metric)
        print()
        print(render_table(
            [axis, "count", "mean", "min", "max"],
            [[g[axis], g["count"], f"{g['mean']:.6g}", f"{g['min']:.6g}",
              f"{g['max']:.6g}"] for g in groups],
            title=f"{metric} grouped by {axis}",
        ))
    if args.export:
        result.to_csv(f"{args.export}.csv")
        result.to_json(f"{args.export}.json")
        print(f"exported {args.export}.csv and {args.export}.json")


def _dse_distributed_runner(args: argparse.Namespace, sweep, cache_dir,
                            metrics=None):
    from .dse import DistributedSweepError, DistributedSweepRunner

    if cache_dir is None:
        raise DistributedSweepError(
            "--worker/--watch need the point cache (drop --no-cache); "
            "it is how workers publish results to each other"
        )
    return DistributedSweepRunner(
        sweep,
        cache_dir=cache_dir,
        work_dir=args.work_dir,
        runs_dir=args.runs_dir,
        stale_after=args.stale_after,
        poll_interval=args.poll_interval,
        metrics=metrics,
    )


def _cmd_dse_worker(args: argparse.Namespace, sweep, cache_dir) -> int:
    from . import obs

    registry = obs.MetricsRegistry()
    runner = _dse_distributed_runner(args, sweep, cache_dir, metrics=registry)
    server = None
    if args.metrics_port is not None:
        server = obs.MetricsServer(registry, port=args.metrics_port).start()
        print(f"metrics: http://127.0.0.1:{server.port}/metrics")
    print(
        f"worker {runner.worker_id}: draining {args.sweep} "
        f"(work dir {runner.queue.work_dir})"
    )

    def progress(event: str, key: str) -> None:
        if not args.quiet:
            print(f"  {event:<9} {key[:12]}")

    try:
        tally = runner.drain(max_points=args.max_points, progress=progress)
    finally:
        if server is not None:
            server.stop()
    print(
        f"worker done: evaluated {tally['evaluated']}, "
        f"cache hits {tally['cache_hits']}, claims {tally['claims']}, "
        f"reclaims {tally['reclaims']} ({tally['points']} points total)"
    )
    return 0


def _cmd_dse_watch(args: argparse.Namespace, sweep, cache_dir) -> int:
    from .dse import DistributedSweepError, parse_objectives

    runner = _dse_distributed_runner(args, sweep, cache_dir)
    objectives = parse_objectives(args.pareto) if args.pareto else None
    deadline = (
        time.monotonic() + args.timeout if args.timeout is not None else None
    )
    last_done = -1
    while True:
        status = runner.status()
        if status["done"] != last_done and not args.quiet:
            last_done = status["done"]
            line = (
                f"  {status['done']}/{status['points']} done, "
                f"{status['claimed']} claimed"
            )
            if status["stale_claims"]:
                line += f", {status['stale_claims']} stale"
            if status["duplicate_evaluations"]:
                line += (
                    f", {status['duplicate_evaluations']} duplicate "
                    "evaluations"
                )
            print(line, flush=True)
            if objectives and not status["complete"]:
                for row in runner.frontier(objectives):
                    axes = ", ".join(
                        f"{k}={row[k]}" for k in sweep.axis_names
                    )
                    print(f"    frontier: {axes}", flush=True)
        if status["complete"]:
            break
        if deadline is not None and time.monotonic() > deadline:
            raise DistributedSweepError(
                f"watch timed out after {args.timeout:.0f}s with "
                f"{status['points'] - status['done']} points outstanding"
            )
        time.sleep(args.poll_interval)
    _dse_report(args, sweep, runner.collect())
    return 0


def _cmd_dse_halving(args: argparse.Namespace, sweep, cache_dir) -> int:
    from .dse import SuccessiveHalvingScheduler, parse_objectives

    objectives = parse_objectives(args.halving)
    scheduler = SuccessiveHalvingScheduler(
        sweep,
        objectives,
        reduction=args.reduction,
        min_generations=args.min_generations,
        cache_dir=cache_dir,
        jobs=args.jobs,
        runs_dir=args.runs_dir,
    )
    print(
        f"halving: {len(sweep.expand())} points, rung budgets "
        f"{scheduler.budgets} (reduction {args.reduction})"
    )

    def progress(done: int, total: int, row) -> None:
        if not args.quiet:
            state = "cache" if row.get("cached") else "run"
            axes = ", ".join(f"{k}={row[k]}" for k in sweep.axis_names)
            print(f"  [{done}/{total}] {state:<5} {axes}")

    hres = scheduler.run(progress=progress)
    print()
    print(render_table(
        ["rung", "budget", "points", "promoted", "pruned", "frontier"],
        [[r["rung"], r["budget"], r["points"], r["promoted"], r["pruned"],
          r["frontier"]] for r in hres.rungs],
        title="Successive-halving rungs",
    ))
    print(
        f"\nscheduled {hres.scheduled_generations}/"
        f"{hres.full_generations} generations "
        f"({hres.budget_fraction:.0%} of the full sweep)"
    )
    _dse_report(args, sweep, hres.to_result())
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from .dse import SweepRunner, SweepSpec, default_cache_dir

    sweep = SweepSpec.load(args.sweep)
    modes = [
        name for name, active in (
            ("--worker", args.worker),
            ("--watch", args.watch),
            ("--halving", args.halving is not None),
        ) if active
    ]
    if len(modes) > 1:
        raise SystemExit(
            f"error: {' and '.join(modes)} are mutually exclusive"
        )
    cache_dir = None if args.no_cache else (
        args.cache_dir or default_cache_dir()
    )
    if args.worker:
        return _cmd_dse_worker(args, sweep, cache_dir)
    if args.watch:
        return _cmd_dse_watch(args, sweep, cache_dir)
    if args.halving is not None:
        return _cmd_dse_halving(args, sweep, cache_dir)

    runner = SweepRunner(
        sweep, cache_dir=cache_dir, jobs=args.jobs, runs_dir=args.runs_dir
    )

    def progress(done: int, total: int, row) -> None:
        if not args.quiet:
            state = "cache" if row.get("cached") else "run"
            axes = ", ".join(f"{k}={row[k]}" for k in sweep.axis_names)
            print(f"  [{done}/{total}] {state:<5} {axes}")

    print(
        f"sweep: {len(sweep.expand())} points over axes "
        f"{', '.join(sweep.axis_names)} ({sweep.strategy})"
    )
    result = runner.run(progress=progress)
    _dse_report(args, sweep, result)
    return 0


def _cmd_design_space(args: argparse.Namespace) -> int:
    from .hw.energy import area_breakdown, pe_sweep, roofline_power

    rows = []
    for entry in pe_sweep():
        n = entry["num_eve_pe"]
        rows.append([
            n,
            f"{roofline_power(n).total_mw:.1f}",
            f"{area_breakdown(n).total_mm2:.3f}",
        ])
    print(render_table(
        ["EvE PEs", "roofline mW", "area mm2"], rows,
        title="GeneSys design space (Fig. 8)",
    ))
    return 0


def _serve_endpoint(args: argparse.Namespace):
    """``--root DIR`` / ``--url URL`` -> ``(JobStore | None, ServeClient
    | None)`` — exactly one is set; submit/jobs/job accept either."""
    root = getattr(args, "root", None)
    url = getattr(args, "url", None)
    if (root is None) == (url is None):
        raise SystemExit(
            "error: exactly one of --root DIR (direct store access) or "
            "--url URL (HTTP API) is required"
        )
    if root is not None:
        from .serve import JobStore

        return JobStore(root), None
    from .serve import ServeClient

    return None, ServeClient(url)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import JobApiServer, JobStore, Scheduler

    store = JobStore(args.root)
    scheduler = Scheduler(
        store,
        workers=args.workers,
        poll_interval=args.poll_interval,
        backoff_base=args.backoff_base,
        stale_after=args.stale_after,
    )
    server = None
    if not args.no_http:
        # Sharing the scheduler's registry puts its counters and
        # histograms on GET /metrics next to the store-derived gauges.
        server = JobApiServer(
            store,
            host=args.host,
            port=args.port,
            registry=scheduler.metrics,
        ).start()
        print(f"serving jobs from {store.root} at {server.url}")
    else:
        print(f"scheduling jobs from {store.root} (no HTTP API)")
    hint = f"'repro submit ENV --root {store.root}'"
    if server is not None:
        hint += f" or '--url {server.url}'"
    print(f"  workers: {args.workers}; submit with {hint}")
    try:
        if args.until_idle:
            scheduler.run_until_idle(timeout=args.timeout)
        else:
            scheduler.run_forever()
    except KeyboardInterrupt:
        print("\nshutting down (workers yield at their next checkpoint)")
    finally:
        scheduler.shutdown()
        if server is not None:
            server.shutdown()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    store, client = _serve_endpoint(args)
    if store is not None:
        record = store.submit(
            spec,
            priority=args.priority,
            checkpoint_every=args.checkpoint_every,
            max_retries=args.max_retries,
        )
        payload = store.describe(record.id)
        where = f"--root {store.root}"
    else:
        payload = client.submit(
            spec.to_dict(),
            priority=args.priority,
            checkpoint_every=args.checkpoint_every,
            max_retries=args.max_retries,
        )
        where = f"--url {client.base_url}"
    print(
        f"{payload['id']} queued: {spec.env_id} [{spec.backend}] "
        f"{spec.max_generations} generations, priority {payload['priority']}"
    )
    print(f"  follow with 'repro job {payload['id']} {where} --follow'")
    return 0


def _job_progress(payload) -> str:
    done = payload.get("generations_done") or 0
    total = (payload.get("spec") or {}).get("max_generations", "?")
    return f"{done}/{total}"


def _cmd_jobs(args: argparse.Namespace) -> int:
    store, client = _serve_endpoint(args)
    if store is not None:
        payloads = [store.describe(job_id) for job_id in store.job_ids()]
        source = str(store.root)
    else:
        payloads = client.jobs()
        source = client.base_url
    rows = []
    for payload in payloads:
        spec = payload.get("spec") or {}
        best = payload.get("best_fitness")
        rows.append([
            payload["id"],
            payload["state"],
            payload["priority"],
            spec.get("env_id", "?"),
            spec.get("backend", "?"),
            _job_progress(payload),
            "-" if best is None else f"{best:.2f}",
        ])
    print(render_table(
        ["job", "state", "priority", "environment", "backend",
         "generations", "best"],
        rows,
        title=f"Jobs in {source}",
    ))
    return 0


def _print_job(payload) -> None:
    spec = payload.get("spec") or {}
    print(
        f"{payload['id']}: {payload['state']} "
        f"({spec.get('env_id', '?')} [{spec.get('backend', '?')}], "
        f"generations {_job_progress(payload)}, "
        f"priority {payload['priority']}, attempts {payload['attempts']})"
    )
    best = payload.get("best_fitness")
    if best is not None:
        print(f"  best fitness {best:.2f} over "
              f"{payload['metrics_rows']} recorded generations")
    error = payload.get("error")
    if error:
        print(f"  error: {error.strip().splitlines()[-1]}")


def _cmd_job(args: argparse.Namespace) -> int:
    import time

    from .obs import JsonlTail
    from .serve import FAILED, TERMINAL_STATES

    store, client = _serve_endpoint(args)

    def describe():
        if store is not None:
            return store.describe(args.job_id)
        return client.job(args.job_id)

    # Store-path polling follows metrics.jsonl incrementally (byte
    # offset, torn tail left unconsumed) instead of re-reading the whole
    # file each round; the >= since filter mirrors the HTTP ?since=
    # cursor and also dedupes rows re-delivered after a resume rewound
    # (truncated) the file.
    metrics_tail = (
        JsonlTail(store.run_dir(args.job_id).metrics_path)
        if store is not None
        else None
    )

    def metrics_since(since: int):
        if metrics_tail is not None:
            rows = metrics_tail.poll()
        else:
            rows = client.metrics(args.job_id, since=since)
        return [r for r in rows if int(r.get("generation", 0)) >= since]

    if args.cancel:
        if store is not None:
            store.request_cancel(args.job_id)
            payload = store.describe(args.job_id)
        else:
            payload = client.cancel(args.job_id)
        if payload["state"] == "cancelled":
            print(f"{args.job_id} cancelled")
        else:
            print(f"{args.job_id} cancel requested (state: "
                  f"{payload['state']}; honoured at the next checkpoint "
                  "boundary)")
        return 0

    if args.events:
        events = (
            store.read_events(args.job_id)
            if store is not None
            else client.events(args.job_id)
        )
        for row in events:
            row = dict(row)
            row.pop("ts", None)
            event = row.pop("event", "?")
            detail = " ".join(f"{k}={v}" for k, v in sorted(row.items()))
            print(f"{event:<20}{detail}".rstrip())
        return 0

    payload = describe()
    if args.follow or args.wait:
        next_generation = 0
        while True:
            if args.follow:
                for row in metrics_since(next_generation):
                    generation = int(row.get("generation", 0))
                    next_generation = max(next_generation, generation + 1)
                    print(f"gen {generation}: "
                          f"best {row.get('best_fitness', 0.0):.2f} "
                          f"mean {row.get('mean_fitness', 0.0):.2f}")
            payload = describe()
            if payload["state"] in TERMINAL_STATES:
                break
            time.sleep(args.poll_interval)
        if args.follow:
            # Drain rows that landed between the last poll and the
            # terminal transition.
            for row in metrics_since(next_generation):
                print(f"gen {row.get('generation')}: "
                      f"best {row.get('best_fitness', 0.0):.2f} "
                      f"mean {row.get('mean_fitness', 0.0):.2f}")
    _print_job(payload)
    return 1 if payload["state"] == FAILED else 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .obs import render_top, snapshot_fleet
    from .serve import JobStore

    store = JobStore(args.root)
    try:
        while True:
            screen = render_top(snapshot_fleet(store, detail=True))
            if args.once:
                print(screen)
                return 0
            # Clear + home, like top(1); plain print would scroll.
            sys.stdout.write("\x1b[2J\x1b[H" + screen + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import (
        TELEMETRY_FILENAME,
        export_chrome_trace,
        phase_summary,
        read_telemetry,
    )

    run_dir = Path(args.run_dir)
    telemetry = (
        run_dir / TELEMETRY_FILENAME if run_dir.is_dir() else run_dir
    )
    if not telemetry.exists():
        raise SystemExit(
            f"error: {telemetry} not found — record one with "
            "'repro run --trace --run-dir DIR' (or REPRO_TRACE=1)"
        )

    if args.export:
        out = args.out or str(run_dir / "trace.json")
        events = export_chrome_trace(telemetry, out)
        print(f"wrote {events} events to {out}")
        print("  open in https://ui.perfetto.dev or chrome://tracing")
        return 0

    rows = read_telemetry(telemetry)
    summary = phase_summary(rows)
    if not summary:
        print(f"{telemetry} holds no span rows")
        return 0
    table_rows = [
        [
            entry["phase"],
            entry["count"],
            f"{entry['total_s']:.3f}",
            f"{entry['mean_s'] * 1e3:.2f}",
            f"{entry['share'] * 100:.1f}%",
        ]
        for entry in summary
    ]
    print(render_table(
        ["phase", "count", "total s", "mean ms", "share"],
        table_rows,
        title=f"Phase breakdown: {telemetry}",
    ))
    counters: Dict[str, int] = {}
    for row in rows:
        if row.get("type") == "counter":
            name = str(row.get("name", "?"))
            counters[name] = counters.get(name, 0) + int(row.get("value", 0))
    if counters:
        print()
        print(render_table(
            ["counter", "total"],
            [[name, counters[name]] for name in sorted(counters)],
            title="Counters",
        ))
    print()
    print("note: phases nest (run > evaluate > compile/rollout), so "
          "shares profile wall time rather than partition it")
    return 0


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GeneSys (MICRO 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("envs", help="list the environment suite").set_defaults(
        func=_cmd_envs
    )
    sub.add_parser(
        "backends", help="list the registered experiment backends"
    ).set_defaults(func=_cmd_backends)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        # Defaults are None so a --spec file only loses to flags the user
        # actually typed; fallbacks live in _SPEC_DEFAULTS.
        p.add_argument("env", nargs="?", default=None,
                       help="environment id, e.g. CartPole-v0 "
                            "(optional with --spec)")
        p.add_argument("--spec", metavar="FILE",
                       help="load an ExperimentSpec JSON file; explicit "
                            "flags override its fields")
        p.add_argument("--backend", metavar="NAME",
                       help="experiment backend: software (default), soc, "
                            "or analytical:<platform> (see 'backends')")
        p.add_argument("--generations", type=int, default=None,
                       help="generation budget (default 10)")
        p.add_argument("--population", type=int, default=None,
                       help="population size (default 50)")
        p.add_argument("--episodes", type=int, default=None)
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--max-steps", type=int, default=None)
        p.add_argument("--workers", type=int, default=None,
                       help="parallel fitness-evaluation workers "
                            "(default 1; results are bit-identical)")
        p.add_argument("--vectorizer", metavar="NAME", default=None,
                       help="inference strategy for the software loop: "
                            "scalar (default, node-by-node reference) or "
                            "numpy (compiled batch engine)")
        p.add_argument("--fitness-threshold", type=float, default=None,
                       help="stop when this fitness is reached (defaults "
                            "to the environment's solve threshold)")

    run = sub.add_parser("run", help="evolve an environment")
    add_workload_args(run)
    run.add_argument("--platform", metavar="NAME|FILE",
                     help="run on a registered platform (see "
                          "'platforms') or a PlatformSpec JSON file; "
                          "picks --backend analytical (or soc for a "
                          "soc-kind spec) unless one is given")
    run.add_argument("--scenario", metavar="NAME|FILE",
                     help="run an environment scenario: a registered "
                          "name (see 'scenarios') or a ScenarioSpec "
                          "JSON file — tunable physics overrides, "
                          "seeded perturbation wrappers, optional "
                          "curriculum (docs/scenarios.md)")
    run.add_argument("--hardware", action="store_true",
                     help="shorthand for --backend soc (EvE/ADAM "
                          "hardware-in-the-loop path)")
    run.add_argument("--run-dir", metavar="DIR", dest="run_dir",
                     help="persist run artifacts (spec, metrics.jsonl, "
                          "checkpoints, champion) into DIR; the run "
                          "becomes resumable")
    run.add_argument("--resume", metavar="DIR",
                     help="continue the run recorded in DIR from its "
                          "last checkpoint, bit-identically to an "
                          "uninterrupted run; only --generations may "
                          "accompany it (to extend the budget)")
    run.add_argument("--checkpoint-every", type=_positive_int,
                     default=None, metavar="N",
                     help="full-state checkpoint cadence in generations "
                          "(default 5; resume keeps the recorded "
                          "cadence)")
    run.add_argument("--trace", action="store_true",
                     help="append span/counter telemetry to "
                          "telemetry.jsonl in the run directory "
                          "(requires --run-dir or --resume; strictly "
                          "out-of-band — every other artifact stays "
                          "byte-identical; see 'repro trace' and "
                          "docs/observability.md)")
    run.add_argument("--save", metavar="FILE",
                     help="save the champion genome (JSON)")
    run.add_argument("--save-spec", metavar="FILE",
                     help="save the resolved ExperimentSpec (JSON)")
    run.add_argument("--show", action="store_true",
                     help="print the champion's topology")
    run.set_defaults(func=_cmd_run)

    infer = sub.add_parser("infer", help="roll out a saved champion")
    infer.add_argument("champion", help="champion JSON from 'run --save'")
    infer.add_argument("env", help="environment id")
    infer.add_argument("--episodes", type=int, default=3)
    infer.add_argument("--seed", type=int, default=0)
    infer.add_argument("--max-steps", type=int, default=None)
    infer.set_defaults(func=_cmd_infer)

    char = sub.add_parser("characterise", help="workload characterisation")
    add_workload_args(char)
    char.set_defaults(func=_cmd_characterise)

    plat = sub.add_parser(
        "platforms",
        help="platform registry / comparison",
        description="With no environment: list the platform registry "
                    "(Table III legend names, the cycle-level soc design "
                    "point, and custom registrations); --json emits the "
                    "machine-readable PlatformSpec dump.  With an "
                    "environment: the Fig. 9-style modelled "
                    "runtime/energy matrix across every registered "
                    "platform.",
    )
    add_workload_args(plat)
    plat.add_argument("--json", action="store_true",
                      help="print the registry as JSON (platform name -> "
                           "PlatformSpec dict; null for factory-backed "
                           "custom entries)")
    plat.set_defaults(func=_cmd_platforms)

    scen = sub.add_parser(
        "scenarios",
        help="list the scenario registry",
        description="List the registered environment scenarios "
                    "(repro.scenarios): tunable-parameter variants, "
                    "seeded adversarial perturbations and curriculum "
                    "schedules, runnable with 'repro run --scenario "
                    "NAME' and sweepable with the scenario.* dse axes.",
    )
    scen.add_argument("--json", action="store_true",
                      help="print the registry as JSON (scenario name -> "
                           "ScenarioSpec dict)")
    scen.set_defaults(func=_cmd_scenarios)

    sub.add_parser("design-space", help="PE sweep power/area table").set_defaults(
        func=_cmd_design_space
    )

    dse = sub.add_parser(
        "dse",
        help="run a declarative design-space sweep (repro.dse)",
        description="Expand a SweepSpec JSON file into experiment points, "
                    "run them through the backend registry with on-disk "
                    "memoisation, and tabulate/export the results.  Axes "
                    "span experiment-spec fields and unified platform-"
                    "spec fields (platform.eve_pes, platform.noc, "
                    "platform.scheduler, platform.adam_shape, ...; the "
                    "old hw.* spellings are deprecated aliases).",
    )
    dse.add_argument("--sweep", metavar="FILE", required=True,
                     help="SweepSpec JSON file (base spec + axes)")
    dse.add_argument("--cache-dir", metavar="DIR", default=None,
                     help="point cache directory (default: "
                          "$REPRO_DSE_CACHE or ~/.cache/repro-dse)")
    dse.add_argument("--no-cache", action="store_true",
                     help="disable the on-disk point cache")
    dse.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                     help="process-pool parallelism across sweep points "
                          "(default 1; composes with each point's "
                          "'workers' setting)")
    dse.add_argument("--export", metavar="PREFIX",
                     help="write PREFIX.csv and PREFIX.json result tables")
    dse.add_argument("--pareto", metavar="OBJECTIVES",
                     help="print the Pareto frontier, e.g. "
                          "'fitness:max,energy_j:min'")
    dse.add_argument("--group-by", metavar="AXIS[:METRIC]",
                     help="print a per-axis-value summary of METRIC "
                          "(default fitness)")
    dse.add_argument("--runs-dir", metavar="DIR", dest="runs_dir",
                     default=None,
                     help="write one durable run directory per evaluated "
                          "sweep point under DIR (content-addressed; "
                          "points become inspectable with 'repro "
                          "report' and resumable on interruption)")
    dse.add_argument("--quiet", action="store_true",
                     help="suppress per-point progress lines")
    dse.add_argument("--worker", action="store_true",
                     help="run as a distributed sweep worker: claim "
                          "pending points via atomic claim files in the "
                          "shared work dir, evaluate them into the "
                          "shared cache, and exit when the sweep is "
                          "drained (start any number of workers on any "
                          "number of hosts)")
    dse.add_argument("--watch", action="store_true",
                     help="follow a distributed sweep's progress "
                          "(incremental frontier with --pareto) and "
                          "print/export the collected table once every "
                          "point is cached")
    dse.add_argument("--halving", metavar="OBJECTIVES", default=None,
                     help="successive-halving early stopping: run "
                          "geometric max_generations rungs, promoting "
                          "the top 1/reduction by the first objective "
                          "plus every rung-Pareto-frontier point, e.g. "
                          "'fitness:max,energy_j:min'")
    dse.add_argument("--reduction", type=_positive_int, default=3,
                     metavar="N",
                     help="halving reduction factor (default 3): each "
                          "rung promotes ~1/N of its points")
    dse.add_argument("--min-generations", type=_positive_int, default=1,
                     metavar="N", dest="min_generations",
                     help="smallest halving rung budget (default 1)")
    dse.add_argument("--work-dir", metavar="DIR", dest="work_dir",
                     default=None,
                     help="claim files + event ledger for --worker/"
                          "--watch (default: a <cache-dir>.work/ "
                          "subdirectory keyed by the sweep's content "
                          "hash; never inside the cache itself)")
    dse.add_argument("--stale-after", type=float, default=60.0,
                     metavar="SECONDS", dest="stale_after",
                     help="reclaim a claim whose heartbeat is older "
                          "than this (default 60)")
    dse.add_argument("--poll-interval", type=float, default=0.5,
                     metavar="SECONDS", dest="poll_interval",
                     help="worker/watch poll cadence while waiting on "
                          "other workers (default 0.5)")
    dse.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="--watch: give up if the sweep is still "
                          "unfinished after this long")
    dse.add_argument("--max-points", type=_positive_int, default=None,
                     metavar="N", dest="max_points",
                     help="--worker: exit after evaluating N fresh "
                          "points (fault-injection drills)")
    dse.add_argument("--metrics-port", type=int, default=None,
                     metavar="PORT", dest="metrics_port",
                     help="--worker: serve claim/reclaim/evaluation "
                          "counters at GET /metrics on this port "
                          "(0 picks a free one)")
    dse.set_defaults(func=_cmd_dse)

    report = sub.add_parser(
        "report",
        help="rebuild metric tables from run directories",
        description="Re-derive fitness-curve and hardware/cost tables "
                    "from recorded run artifacts (spec.json + "
                    "metrics.jsonl + result.json) — no re-simulation. "
                    "Works on finished, in-progress and interrupted "
                    "runs alike.",
    )
    report.add_argument("dirs", nargs="+", metavar="DIR",
                        help="run directories (from 'run --run-dir' or "
                             "'dse --runs-dir')")
    report.add_argument("--summary-only", action="store_true",
                        help="print only the cross-run summary table")
    report.add_argument("--export", metavar="PREFIX",
                        help="write PREFIX.csv (per-generation rows) and "
                             "PREFIX.json (full artifacts)")
    report.set_defaults(func=_cmd_report)

    def add_endpoint_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--root", metavar="DIR",
                       help="serve root directory (direct store access; "
                            "works with or without a running scheduler)")
        p.add_argument("--url", metavar="URL",
                       help="HTTP endpoint of a 'repro serve' process, "
                            "e.g. http://127.0.0.1:8642")

    serve = sub.add_parser(
        "serve",
        help="run the evolution-job scheduler and HTTP API",
        description="Run the repro.serve scheduler over a serve root: a "
                    "pool of worker processes executes queued jobs in "
                    "checkpoint-sized slices, higher-priority submissions "
                    "preempt running jobs at their next checkpoint "
                    "boundary (and later resume bit-identically), crashed "
                    "workers are reclaimed via stale lock heartbeats and "
                    "retried with exponential backoff.  Unless --no-http "
                    "is given, a JSON API serves submissions, status, "
                    "metrics and cancellation over HTTP.",
    )
    serve.add_argument("root", metavar="ROOT",
                       help="serve root directory (created if missing)")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       metavar="N",
                       help="concurrent worker processes (default 2)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="HTTP bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="HTTP port (default 8642; 0 picks a free one)")
    serve.add_argument("--no-http", action="store_true",
                       help="run the scheduler only, without the JSON API")
    serve.add_argument("--until-idle", action="store_true",
                       help="exit once every job is terminal (batch/CI "
                            "mode) instead of serving forever")
    serve.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="with --until-idle: fail if jobs are still "
                            "active after S seconds")
    serve.add_argument("--poll-interval", type=float, default=0.5,
                       metavar="S",
                       help="scheduler poll cadence in seconds "
                            "(default 0.5)")
    serve.add_argument("--backoff-base", type=float, default=1.0,
                       metavar="S",
                       help="first retry delay for failed jobs; attempt n "
                            "waits backoff * 2^(n-1) (default 1.0)")
    serve.add_argument("--stale-after", type=float, default=30.0,
                       metavar="S",
                       help="reclaim a running job when its run-lock "
                            "heartbeat is older than S seconds "
                            "(default 30)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="queue an experiment as a job",
        description="Build an experiment spec exactly like 'run' does "
                    "(flags and/or --spec FILE) and enqueue it as a job "
                    "in a serve root — directly (--root) or through a "
                    "running server (--url).  Higher --priority jobs "
                    "dispatch first and preempt lower-priority running "
                    "jobs at their next checkpoint boundary.",
    )
    add_workload_args(submit)
    add_endpoint_args(submit)
    submit.add_argument("--priority", type=int, default=0,
                        help="scheduling priority (default 0; higher "
                             "preempts lower)")
    submit.add_argument("--checkpoint-every", type=_positive_int,
                        default=None, metavar="N",
                        help="checkpoint cadence in generations; also the "
                             "preemption granularity (default 5)")
    submit.add_argument("--max-retries", type=int, default=2, metavar="N",
                        help="crashed-worker retries before the job is "
                             "marked failed (default 2)")
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list jobs in a serve root",
    )
    add_endpoint_args(jobs)
    jobs.set_defaults(func=_cmd_jobs)

    job = sub.add_parser(
        "job",
        help="inspect, follow or cancel one job",
        description="Show one job's state and progress.  --wait blocks "
                    "until the job is terminal (for scripts/CI), --follow "
                    "additionally streams per-generation metrics as they "
                    "are recorded, --events prints the job's full event "
                    "history (submissions, slices, preemptions, retries), "
                    "--cancel stops it (immediately if waiting, at the "
                    "next checkpoint boundary if running).  Exits 1 if "
                    "the job ended in state 'failed'.",
    )
    job.add_argument("job_id", metavar="ID", help="job id, e.g. job-000001")
    add_endpoint_args(job)
    job.add_argument("--cancel", action="store_true",
                     help="cancel the job")
    job.add_argument("--wait", action="store_true",
                     help="block until the job reaches a terminal state")
    job.add_argument("--follow", action="store_true",
                     help="stream metrics until the job is terminal "
                          "(implies --wait)")
    job.add_argument("--events", action="store_true",
                     help="print the job's event log and exit")
    job.add_argument("--poll-interval", type=float, default=1.0,
                     metavar="S",
                     help="poll cadence for --wait/--follow (default 1.0)")
    job.set_defaults(func=_cmd_job)

    top = sub.add_parser(
        "top",
        help="live one-screen fleet view of a serve root",
        description="Render the serve root's jobs — state, progress, "
                    "best fitness, lock-heartbeat age — as one screen, "
                    "refreshed in place (reads the on-disk store; no "
                    "server required).  The same data feeds the HTTP "
                    "API's GET /metrics Prometheus endpoint.",
    )
    top.add_argument("root", metavar="ROOT", help="serve root directory")
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="refresh cadence in seconds (default 2.0)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (scripts/CI)")
    top.set_defaults(func=_cmd_top)

    trace = sub.add_parser(
        "trace",
        help="inspect a traced run's telemetry",
        description="Summarise a run's telemetry.jsonl (recorded with "
                    "'run --trace' or REPRO_TRACE=1) as a Fig. 10-style "
                    "phase breakdown — where the wall-clock went: "
                    "evaluate vs reproduce vs checkpoint, compile vs "
                    "rollout — or export it as Chrome trace-event JSON "
                    "for Perfetto / chrome://tracing.",
    )
    trace.add_argument("run_dir", metavar="RUN_DIR",
                       help="a traced run directory (or a telemetry.jsonl "
                            "path directly)")
    trace.add_argument("--export", metavar="FORMAT", choices=["chrome"],
                       help="write the trace instead of summarising; "
                            "formats: chrome (trace-event JSON)")
    trace.add_argument("--out", metavar="FILE",
                       help="output path for --export (default: "
                            "RUN_DIR/trace.json)")
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    import os

    trace_file = os.environ.get("REPRO_TRACE_FILE")
    if trace_file:
        # Process-wide telemetry for commands with no run directory
        # (dse sweeps, characterise); run-scoped tracing still takes
        # over inside run_in_dir.  Forked pool workers inherit it.
        from .obs import Tracer, install

        install(Tracer(trace_file))
    from .api import SpecError, UnknownBackendError
    from .dse import ObjectiveError
    from .envs.registry import UnknownEnvironmentError
    from .neat.serialize import DeserializationError
    from .platforms import PlatformSpecError, UnknownPlatformError
    from .runs import RunError
    from .scenarios import ScenarioSpecError, UnknownScenarioError
    from .serve import JobStoreError, ServeClientError

    try:
        return args.func(args)
    except (
        SpecError, UnknownBackendError, UnknownEnvironmentError,
        ObjectiveError, RunError, DeserializationError,
        PlatformSpecError, UnknownPlatformError,
        ScenarioSpecError, UnknownScenarioError,
        JobStoreError, ServeClientError,
    ) as exc:
        # KeyError subclasses repr-quote their message; unwrap it.
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
