"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``envs``                      list the environment suite (Table I)
``run ENV``                   evolve ENV in software or on the SoC model
``characterise ENV``          Fig. 4/5-style workload characterisation
``platforms ENV``             Fig. 9-style platform runtime/energy matrix
``design-space``              Fig. 8 power/area sweep of the SoC
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.reporting import (
    fmt_bytes,
    fmt_joules,
    fmt_seconds,
    render_table,
)


def _cmd_envs(_args: argparse.Namespace) -> int:
    from .envs import available, make

    rows = []
    for env_id in available():
        env = make(env_id)
        rows.append([
            env_id, env.num_observations, env.num_actions, env.max_episode_steps,
        ])
    print(render_table(
        ["Environment", "observations", "actions", "step limit"], rows,
        title="Environment suite (Table I)",
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.hardware:
        from .core import evolve_on_hardware

        result = evolve_on_hardware(
            args.env, max_generations=args.generations, pop_size=args.population,
            episodes=args.episodes, seed=args.seed, max_steps=args.max_steps,
        )
        print(
            f"[hardware] {args.env}: best fitness "
            f"{result.best_genome.fitness:.2f} after {result.generations} "
            f"generations (converged={result.converged})"
        )
        print(
            f"  chip time {fmt_seconds(result.total_cycles / 200e6)}, "
            f"energy {fmt_joules(result.total_energy_j)}"
        )
        best = result.best_genome
        config = result.soc.config.neat
    else:
        from .core import evolve_software

        result = evolve_software(
            args.env, max_generations=args.generations, pop_size=args.population,
            episodes=args.episodes, seed=args.seed, max_steps=args.max_steps,
        )
        print(
            f"[software] {args.env}: best fitness "
            f"{result.best_genome.fitness:.2f} after {result.generations} "
            f"generations (converged={result.converged})"
        )
        conns, nodes = result.best_genome.size()
        print(f"  champion: {conns} enabled connections, {nodes} nodes")
        best = result.best_genome
        config = result.population.config
    if args.show:
        from .analysis.netviz import describe_genome

        print(describe_genome(best, config.genome))
    if args.save:
        from .neat.serialize import save_genome

        save_genome(best, args.save, config=config)
        print(f"  champion saved to {args.save}")
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    """Load a saved champion and roll it out in its environment."""
    from .envs import make, run_episode
    from .neat.network import FeedForwardNetwork
    from .neat.serialize import load_genome_with_config

    genome, config = load_genome_with_config(args.champion)
    network = FeedForwardNetwork.create(genome, config.genome)
    env = make(args.env)
    rewards = []
    for episode in range(args.episodes):
        env.seed(args.seed + episode)
        result = run_episode(network, env, max_steps=args.max_steps)
        rewards.append(result.total_reward)
        print(f"episode {episode}: reward {result.total_reward:.2f} "
              f"in {result.steps} steps")
    print(f"mean reward over {len(rewards)} episodes: "
          f"{sum(rewards) / len(rewards):.2f}")
    return 0


def _cmd_characterise(args: argparse.Namespace) -> int:
    from .core import TraceRecorder

    recorder = TraceRecorder(
        args.env, pop_size=args.population, seed=args.seed,
        max_steps=args.max_steps,
    )
    trace = recorder.record(args.generations)
    rows = []
    for w in trace.workloads:
        rows.append([
            w.generation, w.total_nodes, w.total_connections,
            w.evolution_ops, fmt_bytes(w.footprint_bytes),
            w.fittest_parent_reuse, w.env_steps,
        ])
    print(render_table(
        ["gen", "node genes", "conn genes", "ops", "footprint",
         "fittest reuse", "env steps"],
        rows,
        title=f"Workload characterisation: {args.env} "
              f"(population {args.population})",
    ))
    return 0


def _cmd_platforms(args: argparse.Namespace) -> int:
    from .core import TraceRecorder
    from .platforms import all_platforms

    trace = TraceRecorder(
        args.env, pop_size=args.population, seed=args.seed,
        max_steps=args.max_steps,
    ).record(args.generations)
    workload = trace.mean_workload()
    rows = []
    for platform in all_platforms():
        inference = platform.inference_cost(workload)
        evolution = platform.evolution_cost(workload)
        rows.append([
            platform.name,
            fmt_seconds(inference.runtime_s),
            fmt_joules(inference.energy_j),
            fmt_seconds(evolution.runtime_s),
            fmt_joules(evolution.energy_j),
            fmt_bytes(platform.memory_footprint_bytes(workload)),
        ])
    print(render_table(
        ["platform", "inf time/gen", "inf energy/gen",
         "evo time/gen", "evo energy/gen", "footprint"],
        rows,
        title=f"Platform comparison on {args.env} (Fig. 9 style)",
    ))
    return 0


def _cmd_design_space(args: argparse.Namespace) -> int:
    from .hw.energy import area_breakdown, pe_sweep, roofline_power

    rows = []
    for entry in pe_sweep():
        n = entry["num_eve_pe"]
        rows.append([
            n,
            f"{roofline_power(n).total_mw:.1f}",
            f"{area_breakdown(n).total_mm2:.3f}",
        ])
    print(render_table(
        ["EvE PEs", "roofline mW", "area mm2"], rows,
        title="GeneSys design space (Fig. 8)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GeneSys (MICRO 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("envs", help="list the environment suite").set_defaults(
        func=_cmd_envs
    )

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("env", help="environment id, e.g. CartPole-v0")
        p.add_argument("--generations", type=int, default=10)
        p.add_argument("--population", type=int, default=50)
        p.add_argument("--episodes", type=int, default=1)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--max-steps", type=int, default=None)

    run = sub.add_parser("run", help="evolve an environment")
    add_workload_args(run)
    run.add_argument("--hardware", action="store_true",
                     help="run the EvE/ADAM hardware-in-the-loop path")
    run.add_argument("--save", metavar="FILE",
                     help="save the champion genome (JSON)")
    run.add_argument("--show", action="store_true",
                     help="print the champion's topology")
    run.set_defaults(func=_cmd_run)

    infer = sub.add_parser("infer", help="roll out a saved champion")
    infer.add_argument("champion", help="champion JSON from 'run --save'")
    infer.add_argument("env", help="environment id")
    infer.add_argument("--episodes", type=int, default=3)
    infer.add_argument("--seed", type=int, default=0)
    infer.add_argument("--max-steps", type=int, default=None)
    infer.set_defaults(func=_cmd_infer)

    char = sub.add_parser("characterise", help="workload characterisation")
    add_workload_args(char)
    char.set_defaults(func=_cmd_characterise)

    plat = sub.add_parser("platforms", help="platform comparison")
    add_workload_args(plat)
    plat.set_defaults(func=_cmd_platforms)

    sub.add_parser("design-space", help="PE sweep power/area table").set_defaults(
        func=_cmd_design_space
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
