"""Configuration for the NEAT algorithm.

The paper's System CPU "performs the configuration steps of the NEAT
algorithm (setting the various probabilities, population size, fitness
equation, and so on)" (Section IV-A).  :class:`NEATConfig` is the software
image of that configuration block: every crossover/mutation probability
that the EvE PE consumes (Fig. 7 "Config: Crossover and Mutation (Perturb,
Add, Delete) Probability") lives here, along with the speciation and
reproduction knobs of NEAT proper.

Defaults follow the neat-python configuration style the paper used for its
characterisation, tuned mildly so the bundled environments converge in a
reasonable number of generations on a laptop.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .activations import ActivationFunctionSet
from .aggregations import AggregationFunctionSet


class ConfigError(ValueError):
    """Raised for invalid or inconsistent NEAT configuration values."""


@dataclass
class GenomeConfig:
    """Structural and mutation parameters for a single genome."""

    num_inputs: int = 2
    num_outputs: int = 1

    # -- initial topology ------------------------------------------------
    # The paper (Section III-B): "All experiments start with the same simple
    # NN topology - a set of input nodes ... and a set of output nodes ...
    # fully-connected but the weight on each connection is set to zero."
    initial_connection: str = "full"  # "full" | "none"
    initial_weight: Optional[float] = 0.0  # None -> random init

    # -- weight / bias attribute mutation --------------------------------
    weight_init_mean: float = 0.0
    weight_init_stdev: float = 1.0
    weight_max_value: float = 8.0
    weight_min_value: float = -8.0
    weight_mutate_power: float = 0.5
    weight_mutate_rate: float = 0.8
    weight_replace_rate: float = 0.1

    bias_init_mean: float = 0.0
    bias_init_stdev: float = 1.0
    bias_max_value: float = 8.0
    bias_min_value: float = -8.0
    bias_mutate_power: float = 0.5
    bias_mutate_rate: float = 0.7
    bias_replace_rate: float = 0.1

    response_init_mean: float = 1.0
    response_init_stdev: float = 0.0
    response_max_value: float = 8.0
    response_min_value: float = -8.0
    response_mutate_power: float = 0.1
    response_mutate_rate: float = 0.1
    response_replace_rate: float = 0.05

    # -- structural mutation ----------------------------------------------
    node_add_prob: float = 0.1
    node_delete_prob: float = 0.05
    conn_add_prob: float = 0.25
    conn_delete_prob: float = 0.1
    enabled_mutate_rate: float = 0.05
    # Safety threshold mirrored in the Delete Gene engine (Section IV-C3):
    # "If a threshold amount of nodes are previously deleted, no [node]
    # deletion happens in order to keep the genome alive."
    max_node_deletions_per_child: int = 1
    single_structural_mutation: bool = False

    # -- activation / aggregation -----------------------------------------
    activation_default: str = "tanh"
    activation_mutate_rate: float = 0.05
    activation_options: List[str] = field(default_factory=lambda: ["tanh"])

    aggregation_default: str = "sum"
    aggregation_mutate_rate: float = 0.02
    aggregation_options: List[str] = field(default_factory=lambda: ["sum"])

    # -- crossover ---------------------------------------------------------
    # Bias towards the fitter parent when cherry-picking attributes; the EvE
    # crossover engine exposes this as a programmable bias, default 0.5
    # (Section IV-C3, "Crossover Engine").
    crossover_bias: float = 0.5

    # -- compatibility distance --------------------------------------------
    compatibility_disjoint_coefficient: float = 1.0
    compatibility_weight_coefficient: float = 0.5

    def validate(self) -> None:
        if self.num_inputs < 1:
            raise ConfigError("num_inputs must be >= 1")
        if self.num_outputs < 1:
            raise ConfigError("num_outputs must be >= 1")
        if self.initial_connection not in ("full", "none"):
            raise ConfigError(
                f"initial_connection must be 'full' or 'none', got {self.initial_connection!r}"
            )
        for name in ("weight", "bias", "response"):
            lo = getattr(self, f"{name}_min_value")
            hi = getattr(self, f"{name}_max_value")
            if lo >= hi:
                raise ConfigError(f"{name}_min_value must be < {name}_max_value")
        probs = [
            ("node_add_prob", self.node_add_prob),
            ("node_delete_prob", self.node_delete_prob),
            ("conn_add_prob", self.conn_add_prob),
            ("conn_delete_prob", self.conn_delete_prob),
            ("weight_mutate_rate", self.weight_mutate_rate),
            ("bias_mutate_rate", self.bias_mutate_rate),
            ("response_mutate_rate", self.response_mutate_rate),
            ("enabled_mutate_rate", self.enabled_mutate_rate),
            ("activation_mutate_rate", self.activation_mutate_rate),
            ("aggregation_mutate_rate", self.aggregation_mutate_rate),
            ("crossover_bias", self.crossover_bias),
        ]
        for pname, p in probs:
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{pname} must be in [0, 1], got {p}")
        activations = ActivationFunctionSet()
        for name in [self.activation_default, *self.activation_options]:
            if name not in activations:
                raise ConfigError(f"unknown activation {name!r}")
        aggregations = AggregationFunctionSet()
        for name in [self.aggregation_default, *self.aggregation_options]:
            if name not in aggregations:
                raise ConfigError(f"unknown aggregation {name!r}")

    @property
    def input_keys(self) -> List[int]:
        """Input node ids.  Negative by convention (as in neat-python)."""
        return [-(i + 1) for i in range(self.num_inputs)]

    @property
    def output_keys(self) -> List[int]:
        return list(range(self.num_outputs))


@dataclass
class SpeciesConfig:
    """Speciation and fitness-sharing parameters (Section II-D)."""

    compatibility_threshold: float = 3.0
    # Species with no improvement for this many generations are removed.
    max_stagnation: int = 20
    species_elitism: int = 2
    # Fitness-sharing boost for young species ("Fitness sharing is augmenting
    # fitness of young genomes to keep them competitive").
    young_age_threshold: int = 5
    young_fitness_bonus: float = 1.1

    def validate(self) -> None:
        if self.compatibility_threshold <= 0:
            raise ConfigError("compatibility_threshold must be > 0")
        if self.max_stagnation < 1:
            raise ConfigError("max_stagnation must be >= 1")
        if self.species_elitism < 0:
            raise ConfigError("species_elitism must be >= 0")
        if self.young_fitness_bonus < 1.0:
            raise ConfigError("young_fitness_bonus must be >= 1.0")


@dataclass
class ReproductionConfig:
    """Selection and reproduction parameters (Section IV-B steps 7-10)."""

    elitism: int = 2
    # Fraction of each species allowed to reproduce ("only individuals above
    # a certain fitness threshold are allowed to participate", step 7).
    survival_threshold: float = 0.2
    min_species_size: int = 2

    def validate(self) -> None:
        if self.elitism < 0:
            raise ConfigError("elitism must be >= 0")
        if not 0.0 < self.survival_threshold <= 1.0:
            raise ConfigError("survival_threshold must be in (0, 1]")
        if self.min_species_size < 1:
            raise ConfigError("min_species_size must be >= 1")


@dataclass
class NEATConfig:
    """Top-level NEAT configuration.

    The paper runs a population of 150 (Section III-D3 mentions "80 of the
    150 children"); that is the default here.
    """

    pop_size: int = 150
    fitness_threshold: Optional[float] = None
    # "max" matches the paper's target-fitness completion criterion.
    fitness_criterion: str = "max"
    reset_on_extinction: bool = True
    genome: GenomeConfig = field(default_factory=GenomeConfig)
    species: SpeciesConfig = field(default_factory=SpeciesConfig)
    reproduction: ReproductionConfig = field(default_factory=ReproductionConfig)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.pop_size < 2:
            raise ConfigError("pop_size must be >= 2")
        if self.fitness_criterion not in ("max", "min", "mean"):
            raise ConfigError(
                f"fitness_criterion must be max/min/mean, got {self.fitness_criterion!r}"
            )
        self.genome.validate()
        self.species.validate()
        self.reproduction.validate()

    # -- convenience constructors ----------------------------------------

    @classmethod
    def for_env(
        cls,
        num_inputs: int,
        num_outputs: int,
        pop_size: int = 150,
        fitness_threshold: Optional[float] = None,
        **genome_overrides: Any,
    ) -> "NEATConfig":
        """Build a config sized for an environment's observation/action spaces.

        This mirrors the paper's setup: identical codebase per environment,
        "changing only the fitness function between these different runs"
        (Section III-B).
        """
        genome = GenomeConfig(num_inputs=num_inputs, num_outputs=num_outputs)
        for key, value in genome_overrides.items():
            if not hasattr(genome, key):
                raise ConfigError(f"unknown genome config field {key!r}")
            setattr(genome, key, value)
        return cls(
            pop_size=pop_size,
            fitness_threshold=fitness_threshold,
            genome=genome,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NEATConfig":
        data = dict(data)
        genome = GenomeConfig(**data.pop("genome", {}))
        species = SpeciesConfig(**data.pop("species", {}))
        reproduction = ReproductionConfig(**data.pop("reproduction", {}))
        return cls(genome=genome, species=species, reproduction=reproduction, **data)
