"""Gradient fine-tuning of an evolved topology.

Section VII ("Future Directions"): "we believe that GENESYS can be run in
conjunction with supervised learning, with the former enabling rapid
topology exploration and then using conventional training to tune the
weights."  This module implements that hybrid: take a genome NEAT
evolved, freeze its topology, and train its weights/biases by
backpropagation through the levelised DAG.

Supported phenotypes are the ones ADAM can execute (sum aggregation);
activations need derivatives, provided for the common set below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .activations import ActivationFunctionSet
from .config import GenomeConfig
from .genome import Genome
from .network import feed_forward_layers

_ACTIVATIONS = ActivationFunctionSet()


def _sigmoid(z: float) -> float:
    z = max(-60.0, min(60.0, 5.0 * z))
    return 1.0 / (1.0 + math.exp(-z))


#: derivative of each supported activation, as a function of the
#: *pre-activation* input z
_DERIVATIVES: Dict[str, Callable[[float], float]] = {
    "identity": lambda z: 1.0,
    "relu": lambda z: 1.0 if z > 0 else 0.0,
    "tanh": lambda z: 2.5 * (1.0 - math.tanh(max(-60.0, min(60.0, 2.5 * z))) ** 2),
    "sigmoid": lambda z: 5.0 * _sigmoid(z) * (1.0 - _sigmoid(z)),
    "clamped": lambda z: 1.0 if -1.0 <= z <= 1.0 else 0.0,
    "lelu": lambda z: 1.0 if z > 0 else 0.005,
}


class UntrainableGenomeError(ValueError):
    """Genome uses an activation/aggregation without gradient support."""


@dataclass
class TrainResult:
    losses: List[float] = field(default_factory=list)

    @property
    def initial_loss(self) -> float:
        return self.losses[0]

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


class DifferentiableNetwork:
    """A trainable view of a genome: same function, plus gradients.

    Weights/biases live in mutable dicts; :meth:`write_back` pushes the
    trained values into the genome so it can return to the hardware path.
    """

    def __init__(self, genome: Genome, config: GenomeConfig) -> None:
        enabled = [k for k, c in genome.connections.items() if c.enabled]
        self.layers = feed_forward_layers(
            config.input_keys, config.output_keys, enabled
        )
        self.input_keys = list(config.input_keys)
        self.output_keys = list(config.output_keys)
        self.genome = genome
        self.weights: Dict[Tuple[int, int], float] = {}
        self.biases: Dict[int, float] = {}
        self.responses: Dict[int, float] = {}
        self.activations: Dict[int, str] = {}
        self.incoming: Dict[int, List[int]] = {}
        needed = {n for layer in self.layers for n in layer}
        for node_id in needed:
            node = genome.nodes[node_id]
            if node.aggregation != "sum":
                raise UntrainableGenomeError(
                    f"node {node_id}: aggregation {node.aggregation!r} not differentiable here"
                )
            if node.activation not in _DERIVATIVES:
                raise UntrainableGenomeError(
                    f"node {node_id}: activation {node.activation!r} has no derivative"
                )
            self.biases[node_id] = node.bias
            self.responses[node_id] = node.response
            self.activations[node_id] = node.activation
            self.incoming[node_id] = []
        for (src, dst), conn in genome.connections.items():
            if conn.enabled and dst in needed:
                self.weights[(src, dst)] = conn.weight
                self.incoming[dst].append(src)

    # -- forward -----------------------------------------------------------

    def forward(
        self, inputs: Sequence[float]
    ) -> Tuple[List[float], Dict[int, float], Dict[int, float]]:
        """Returns (outputs, node values, node pre-activations)."""
        if len(inputs) != len(self.input_keys):
            raise ValueError(f"expected {len(self.input_keys)} inputs")
        values: Dict[int, float] = {
            k: float(v) for k, v in zip(self.input_keys, inputs)
        }
        for k in self.output_keys:
            values.setdefault(k, 0.0)
        pre: Dict[int, float] = {}
        for layer in self.layers:
            for node_id in layer:
                total = sum(
                    values.get(src, 0.0) * self.weights[(src, node_id)]
                    for src in self.incoming[node_id]
                )
                z = self.biases[node_id] + self.responses[node_id] * total
                pre[node_id] = z
                values[node_id] = _ACTIVATIONS.get(self.activations[node_id])(z)
        outputs = [values.get(k, 0.0) for k in self.output_keys]
        return outputs, values, pre

    def activate(self, inputs: Sequence[float]) -> List[float]:
        return self.forward(inputs)[0]

    # -- backward ---------------------------------------------------------------

    def gradients(
        self, inputs: Sequence[float], output_grads: Sequence[float]
    ) -> Tuple[Dict[Tuple[int, int], float], Dict[int, float]]:
        """dLoss/dweight and dLoss/dbias via reverse-mode through the DAG."""
        _outputs, values, pre = self.forward(inputs)
        node_grad: Dict[int, float] = {
            k: float(g) for k, g in zip(self.output_keys, output_grads)
        }
        weight_grads: Dict[Tuple[int, int], float] = {}
        bias_grads: Dict[int, float] = {}
        for layer in reversed(self.layers):
            for node_id in layer:
                upstream = node_grad.get(node_id, 0.0)
                if upstream == 0.0:
                    continue
                dact = _DERIVATIVES[self.activations[node_id]](pre[node_id])
                dz = upstream * dact
                bias_grads[node_id] = bias_grads.get(node_id, 0.0) + dz
                response = self.responses[node_id]
                for src in self.incoming[node_id]:
                    key = (src, node_id)
                    weight_grads[key] = weight_grads.get(key, 0.0) + (
                        dz * response * values.get(src, 0.0)
                    )
                    node_grad[src] = node_grad.get(src, 0.0) + (
                        dz * response * self.weights[key]
                    )
        return weight_grads, bias_grads

    # -- training -------------------------------------------------------------------

    def train(
        self,
        samples: Sequence[Tuple[Sequence[float], Sequence[float]]],
        epochs: int = 100,
        learning_rate: float = 0.05,
        weight_clip: Optional[float] = 8.0,
    ) -> TrainResult:
        """Full-batch gradient descent on mean squared error."""
        result = TrainResult()
        n = max(1, len(samples))
        for _ in range(epochs):
            loss = 0.0
            weight_acc: Dict[Tuple[int, int], float] = {}
            bias_acc: Dict[int, float] = {}
            for inputs, targets in samples:
                outputs, _values, _pre = self.forward(inputs)
                errors = [o - t for o, t in zip(outputs, targets)]
                loss += 0.5 * sum(e * e for e in errors) / n
                wg, bg = self.gradients(inputs, [e / n for e in errors])
                for key, g in wg.items():
                    weight_acc[key] = weight_acc.get(key, 0.0) + g
                for key, g in bg.items():
                    bias_acc[key] = bias_acc.get(key, 0.0) + g
            for key, g in weight_acc.items():
                w = self.weights[key] - learning_rate * g
                if weight_clip is not None:
                    w = max(-weight_clip, min(weight_clip, w))
                self.weights[key] = w
            for key, g in bias_acc.items():
                b = self.biases[key] - learning_rate * g
                if weight_clip is not None:
                    b = max(-weight_clip, min(weight_clip, b))
                self.biases[key] = b
            result.losses.append(loss)
        return result

    def write_back(self) -> Genome:
        """Copy trained weights/biases into the underlying genome."""
        for key, weight in self.weights.items():
            self.genome.connections[key].weight = weight
        for node_id, bias in self.biases.items():
            self.genome.nodes[node_id].bias = bias
        return self.genome


def finetune_genome(
    genome: Genome,
    config: GenomeConfig,
    samples: Sequence[Tuple[Sequence[float], Sequence[float]]],
    epochs: int = 100,
    learning_rate: float = 0.05,
) -> TrainResult:
    """Evolve-then-train in one call: SGD-tune ``genome`` in place."""
    network = DifferentiableNetwork(genome, config)
    result = network.train(samples, epochs=epochs, learning_rate=learning_rate)
    network.write_back()
    return result
