"""Feed-forward network evaluation of an evolved genome.

The software reference for inference: the genome's enabled connections
form an acyclic directed graph (Section III-C2 — "Inference on such
topologies is basically processing an acyclic directed graph"), which we
topologically levelise and evaluate node-by-node.  The hardware inference
engine model (:mod:`repro.hw.adam`) packs the same levelised vertex
updates into systolic matrix-vector products and is tested for functional
equivalence against this class.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .activations import ActivationFunctionSet
from .aggregations import AggregationFunctionSet
from .config import GenomeConfig
from .genome import Genome

_ACTIVATIONS = ActivationFunctionSet()
_AGGREGATIONS = AggregationFunctionSet()


def required_for_output(
    inputs: Sequence[int], outputs: Sequence[int], connections: Sequence[Tuple[int, int]]
) -> Set[int]:
    """Nodes whose value can influence an output (pruning dead subgraphs)."""
    required = set(outputs)
    frontier = set(outputs)
    incoming: Dict[int, List[int]] = {}
    for src, dst in connections:
        incoming.setdefault(dst, []).append(src)
    while frontier:
        node = frontier.pop()
        for src in incoming.get(node, ()):
            if src not in required and src not in inputs:
                required.add(src)
                frontier.add(src)
    return required


def feed_forward_layers(
    inputs: Sequence[int], outputs: Sequence[int], connections: Sequence[Tuple[int, int]]
) -> List[List[int]]:
    """Topologically levelise the graph into evaluation layers.

    Layer *k* contains nodes whose every in-edge originates in layers < k
    (or at an input).  This levelisation is exactly the "vectorize routine"
    the paper runs on the System CPU "to pack nodes into well formed input
    vectors" (Section IV-A) — each layer is one wave of concurrent vertex
    updates.
    """
    required = required_for_output(inputs, outputs, connections)
    evaluated: Set[int] = set(inputs)
    pending = set(required)
    layers: List[List[int]] = []
    incoming: Dict[int, List[int]] = {}
    for src, dst in connections:
        incoming.setdefault(dst, []).append(src)
    while pending:
        ready = sorted(
            node
            for node in pending
            if all(src in evaluated for src in incoming.get(node, ()))
        )
        if not ready:
            raise ValueError("graph is cyclic or has unreachable required nodes")
        layers.append(ready)
        evaluated.update(ready)
        pending.difference_update(ready)
    return layers


class FeedForwardNetwork:
    """Phenotype built from a genome, evaluated layer by layer."""

    def __init__(
        self,
        input_keys: Sequence[int],
        output_keys: Sequence[int],
        node_evals: List[Tuple[int, str, str, float, float, List[Tuple[int, float]]]],
    ) -> None:
        self.input_keys = list(input_keys)
        self.output_keys = list(output_keys)
        self.node_evals = node_evals
        self.values: Dict[int, float] = {
            key: 0.0 for key in list(input_keys) + list(output_keys)
        }

    @classmethod
    def create(cls, genome: Genome, config: GenomeConfig) -> "FeedForwardNetwork":
        enabled = [
            key for key, conn in genome.connections.items() if conn.enabled
        ]
        layers = feed_forward_layers(config.input_keys, config.output_keys, enabled)
        incoming: Dict[int, List[Tuple[int, float]]] = {}
        for (src, dst), conn in genome.connections.items():
            if conn.enabled:
                incoming.setdefault(dst, []).append((src, conn.weight))
        node_evals = []
        for layer in layers:
            for node_key in layer:
                node = genome.nodes[node_key]
                node_evals.append(
                    (
                        node_key,
                        node.activation,
                        node.aggregation,
                        node.bias,
                        node.response,
                        sorted(incoming.get(node_key, [])),
                    )
                )
        return cls(config.input_keys, config.output_keys, node_evals)

    def activate(self, inputs: Sequence[float]) -> List[float]:
        """One forward pass.  ``inputs`` must match the input key count."""
        if len(inputs) != len(self.input_keys):
            raise ValueError(
                f"expected {len(self.input_keys)} inputs, got {len(inputs)}"
            )
        values = self.values
        for key, value in zip(self.input_keys, inputs):
            values[key] = float(value)
        for node_key, activation, aggregation, bias, response, links in self.node_evals:
            agg_fn = _AGGREGATIONS.get(aggregation)
            act_fn = _ACTIVATIONS.get(activation)
            incoming = [values.get(src, 0.0) * weight for src, weight in links]
            pre = bias + response * agg_fn(incoming)
            values[node_key] = act_fn(pre)
        return [values.get(key, 0.0) for key in self.output_keys]

    @property
    def num_macs(self) -> int:
        """Multiply-accumulate count of one forward pass (Table II metric)."""
        return sum(len(links) for *_rest, links in self.node_evals)

    def reset(self) -> None:
        self.values = {key: 0.0 for key in self.input_keys + self.output_keys}
