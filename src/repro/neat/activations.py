"""Activation functions for NEAT node genes.

NEAT node genes carry an ``activation`` attribute (Section II-D of the
paper; Fig. 6 reserves a gene field for it).  The registry below mirrors
the set shipped by neat-python, which the paper used as its software
baseline.  All functions are scalar ``float -> float`` and are clamped to
avoid overflow, since evolved networks routinely produce large pre-
activation sums before weights are tuned.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator

ActivationFunction = Callable[[float], float]


def sigmoid_activation(z: float) -> float:
    """Steepened logistic sigmoid used by stock NEAT (slope 4.9 in [6])."""
    z = max(-60.0, min(60.0, 5.0 * z))
    return 1.0 / (1.0 + math.exp(-z))


def tanh_activation(z: float) -> float:
    z = max(-60.0, min(60.0, 2.5 * z))
    return math.tanh(z)


def sin_activation(z: float) -> float:
    z = max(-60.0, min(60.0, 5.0 * z))
    return math.sin(z)


def gauss_activation(z: float) -> float:
    z = max(-3.4, min(3.4, z))
    return math.exp(-5.0 * z * z)


def relu_activation(z: float) -> float:
    return z if z > 0.0 else 0.0


def elu_activation(z: float) -> float:
    return z if z > 0.0 else math.exp(max(-60.0, z)) - 1.0

def leaky_relu_activation(z: float) -> float:
    return z if z > 0.0 else 0.005 * z


def identity_activation(z: float) -> float:
    return z


def clamped_activation(z: float) -> float:
    return max(-1.0, min(1.0, z))


def inv_activation(z: float) -> float:
    if abs(z) < 1e-7:
        return 0.0
    return 1.0 / z


def log_activation(z: float) -> float:
    return math.log(max(1e-7, z))


def exp_activation(z: float) -> float:
    z = max(-60.0, min(60.0, z))
    return math.exp(z)


def abs_activation(z: float) -> float:
    return abs(z)


def hat_activation(z: float) -> float:
    return max(0.0, 1.0 - abs(z))


def square_activation(z: float) -> float:
    z = max(-1e8, min(1e8, z))
    return z * z


def cube_activation(z: float) -> float:
    z = max(-1e6, min(1e6, z))
    return z * z * z


class InvalidActivationError(KeyError):
    """Raised when a genome references an unregistered activation."""


class ActivationFunctionSet:
    """Registry mapping activation names to callables.

    A mutable registry (rather than a module-level dict) lets users extend
    NEAT with custom activations without monkey-patching, matching the
    extension point neat-python exposes.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, ActivationFunction] = {}
        for name, fn in _BUILTINS.items():
            self.add(name, fn)

    def add(self, name: str, function: ActivationFunction) -> None:
        if not callable(function):
            raise TypeError(f"activation {name!r} is not callable")
        self._functions[name] = function

    def get(self, name: str) -> ActivationFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise InvalidActivationError(
                f"unknown activation {name!r}; known: {sorted(self._functions)}"
            ) from None

    def is_valid(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> Iterator[str]:
        return iter(sorted(self._functions))

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)


_BUILTINS: Dict[str, ActivationFunction] = {
    "sigmoid": sigmoid_activation,
    "tanh": tanh_activation,
    "sin": sin_activation,
    "gauss": gauss_activation,
    "relu": relu_activation,
    "elu": elu_activation,
    "lelu": leaky_relu_activation,
    "identity": identity_activation,
    "clamped": clamped_activation,
    "inv": inv_activation,
    "log": log_activation,
    "exp": exp_activation,
    "abs": abs_activation,
    "hat": hat_activation,
    "square": square_activation,
    "cube": cube_activation,
}

#: Stable integer codes for the hardware gene encoding (Fig. 6 reserves an
#: "Activation" attribute field in the 64-bit node gene).  Order must never
#: change once genomes have been serialised to hardware words.
ACTIVATION_CODES: Dict[str, int] = {name: i for i, name in enumerate(sorted(_BUILTINS))}
ACTIVATION_NAMES: Dict[int, str] = {i: name for name, i in ACTIVATION_CODES.items()}
