"""Per-generation statistics collection.

Gathers every series the paper's characterisation plots need:

* Fig. 4(a) — best/mean fitness per generation,
* Fig. 4(b) — total gene count per generation,
* Fig. 4(c) — fittest-parent reuse per generation,
* Fig. 5(a) — crossover + mutation op counts per generation,
* Fig. 5(b) — memory footprint (bytes) per generation,
* Fig. 11(a) — node/connection gene composition.

Footprints use the 64-bit-per-gene hardware encoding (Fig. 6): the paper's
footprint metric is "the space required to store all the genes of all
genomes within a generation" (Section III-D1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .genome import Genome, MutationCounts
from .reproduction import ReproductionPlan

GENE_BYTES = 8  # 64-bit hardware gene word (Fig. 6)


@dataclass
class GenerationStats:
    generation: int
    best_fitness: float
    mean_fitness: float
    num_species: int
    num_nodes: int
    num_connections: int
    ops: MutationCounts
    fittest_parent_reuse: int
    population_size: int

    @property
    def num_genes(self) -> int:
        return self.num_nodes + self.num_connections

    @property
    def memory_footprint_bytes(self) -> int:
        """Bytes to store every gene of every genome this generation."""
        return self.num_genes * GENE_BYTES


class StatisticsReporter:
    """Accumulates :class:`GenerationStats` across a run."""

    def __init__(self) -> None:
        self.generations: List[GenerationStats] = []
        self.best_genome: Optional[Genome] = None

    def record(
        self,
        generation: int,
        population: Dict[int, Genome],
        num_species: int,
        plan: Optional[ReproductionPlan],
    ) -> GenerationStats:
        fitnesses = {
            key: genome.fitness
            for key, genome in population.items()
            if genome.fitness is not None
        }
        best_key = max(fitnesses, key=fitnesses.get) if fitnesses else None
        best_fitness = fitnesses[best_key] if best_key is not None else float("-inf")
        mean_fitness = sum(fitnesses.values()) / len(fitnesses) if fitnesses else 0.0
        if best_key is not None:
            candidate = population[best_key]
            if (
                self.best_genome is None
                or self.best_genome.fitness is None
                or (candidate.fitness or 0) > self.best_genome.fitness
            ):
                self.best_genome = candidate.copy()

        num_nodes = sum(len(g.nodes) for g in population.values())
        num_connections = sum(len(g.connections) for g in population.values())
        ops = plan.total_counts if plan is not None else MutationCounts()
        reuse = plan.fittest_parent_reuse(fitnesses) if plan is not None else 0
        stats = GenerationStats(
            generation=generation,
            best_fitness=best_fitness,
            mean_fitness=mean_fitness,
            num_species=num_species,
            num_nodes=num_nodes,
            num_connections=num_connections,
            ops=ops,
            fittest_parent_reuse=reuse,
            population_size=len(population),
        )
        self.generations.append(stats)
        return stats

    # -- series accessors (one per figure) --------------------------------

    def best_fitness_series(self) -> List[float]:
        return [g.best_fitness for g in self.generations]

    def mean_fitness_series(self) -> List[float]:
        return [g.mean_fitness for g in self.generations]

    def gene_count_series(self) -> List[int]:
        return [g.num_genes for g in self.generations]

    def ops_series(self) -> List[int]:
        return [g.ops.total for g in self.generations]

    def footprint_series(self) -> List[int]:
        return [g.memory_footprint_bytes for g in self.generations]

    def reuse_series(self) -> List[int]:
        return [g.fittest_parent_reuse for g in self.generations]

    def composition(self) -> Dict[str, int]:
        """Final-generation node/connection split (Fig. 11a)."""
        if not self.generations:
            return {"nodes": 0, "connections": 0}
        last = self.generations[-1]
        return {"nodes": last.num_nodes, "connections": last.num_connections}
