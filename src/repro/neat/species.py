"""Speciation and fitness sharing (Section II-D).

"Speciation works by grouping a few individuals within the population with
a particular niche.  Within a species, the fitness of the younger
individuals is artificially increased so that they are not obliterated
when pitted against older, fitter individuals."

The partitioning below is representative-based: each species keeps a
representative genome, and individuals join the first species whose
representative lies within the compatibility threshold.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .config import NEATConfig
from .genome import Genome


class Species:
    """One niche: a representative, members, and fitness history."""

    def __init__(self, key: int, created_generation: int) -> None:
        self.key = key
        self.created = created_generation
        self.representative: Optional[Genome] = None
        self.members: Dict[int, Genome] = {}
        self.fitness: Optional[float] = None
        self.adjusted_fitness: Optional[float] = None
        self.fitness_history: List[float] = []
        self.last_improved = created_generation

    def update(self, representative: Genome, members: Dict[int, Genome]) -> None:
        self.representative = representative
        self.members = members

    def age(self, generation: int) -> int:
        return generation - self.created

    def get_fitnesses(self) -> List[float]:
        return [g.fitness for g in self.members.values() if g.fitness is not None]

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        return f"Species(key={self.key}, size={len(self.members)}, fitness={self.fitness})"


class SpeciesSet:
    """Partitions a population into species each generation."""

    def __init__(self, config: NEATConfig) -> None:
        self.config = config
        self.species: Dict[int, Species] = {}
        self.genome_to_species: Dict[int, int] = {}
        self._next_species_key = 1

    def speciate(self, population: Dict[int, Genome], generation: int) -> None:
        """Assign every genome to a species.

        Existing species first re-seed a representative (the member closest
        to the previous representative), then unassigned genomes join the
        first compatible species or found a new one.
        """
        threshold = self.config.species.compatibility_threshold
        genome_config = self.config.genome
        unspeciated = set(population)
        self.genome_to_species = {}
        new_representatives: Dict[int, Genome] = {}
        new_members: Dict[int, List[int]] = {}

        # Re-anchor surviving species on their closest current member.
        for species_key, species in self.species.items():
            if species.representative is None:
                continue
            best_key = None
            best_dist = None
            for genome_key in unspeciated:
                dist = species.representative.distance(population[genome_key], genome_config)
                if best_dist is None or dist < best_dist:
                    best_dist = dist
                    best_key = genome_key
            if best_key is not None and best_dist is not None and best_dist < threshold:
                new_representatives[species_key] = population[best_key]
                new_members[species_key] = [best_key]
                unspeciated.discard(best_key)

        for genome_key in sorted(unspeciated):
            genome = population[genome_key]
            placed = False
            for species_key, representative in new_representatives.items():
                if genome.distance(representative, genome_config) < threshold:
                    new_members[species_key].append(genome_key)
                    placed = True
                    break
            if not placed:
                species_key = self._next_species_key
                self._next_species_key += 1
                self.species[species_key] = Species(species_key, generation)
                new_representatives[species_key] = genome
                new_members[species_key] = [genome_key]

        # Commit; drop species that captured no members this generation.
        for species_key in list(self.species):
            if species_key not in new_members:
                del self.species[species_key]
        for species_key, member_keys in new_members.items():
            members = {key: population[key] for key in member_keys}
            self.species[species_key].update(new_representatives[species_key], members)
            for key in member_keys:
                self.genome_to_species[key] = species_key

    def adjust_fitnesses(self, generation: int) -> None:
        """Explicit fitness sharing with a young-species bonus.

        Each member's fitness is divided by the species size (classic
        sharing) and species younger than ``young_age_threshold`` get a
        multiplicative bonus, implementing the paper's "augmenting fitness
        of young genomes to keep them competitive".
        """
        species_cfg = self.config.species
        for species in self.species.values():
            fitnesses = species.get_fitnesses()
            if not fitnesses:
                species.adjusted_fitness = None
                continue
            mean_fitness = sum(fitnesses) / len(fitnesses)
            bonus = (
                species_cfg.young_fitness_bonus
                if species.age(generation) < species_cfg.young_age_threshold
                else 1.0
            )
            species.fitness = max(fitnesses)
            species.adjusted_fitness = bonus * mean_fitness / len(species.members)
            species.fitness_history.append(species.fitness)

    def species_of(self, genome_key: int) -> Optional[int]:
        return self.genome_to_species.get(genome_key)

    def __len__(self) -> int:
        return len(self.species)
