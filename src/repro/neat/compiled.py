"""Compiled batch inference: levelised genomes as dense numpy plans.

This is the software twin of the paper's *vectorize routine* (Section
IV-A): the same :func:`feed_forward_layers` levelisation that
:class:`repro.hw.adam.ADAM` packs into systolic waves is compiled here
into per-layer dense weight/bias/response arrays, and a whole
population's same-shape plans are padded and stacked so one numpy call
advances every in-flight episode of a generation at once.

Three levels compose:

* :func:`compile_network` — genome → :class:`CompiledNetwork`, a dense
  per-layer plan functionally equivalent to
  :class:`repro.neat.network.FeedForwardNetwork` (property-tested to
  1e-9, and against the ADAM systolic model).
* :class:`StackedPlans` — pads a population's plans to a common
  ``(layers, nodes, columns)`` envelope and stacks them, giving each
  genome its own weight block but one shared execution shape.
* :class:`BatchedEvaluator` — a drop-in
  :class:`repro.envs.evaluate.FitnessEvaluator`: same constructor
  surface, same callable protocol, same per-genome derived episode
  seeds, but every (genome, episode) pair becomes a *lane* stepped in
  lockstep through a batched environment.

Only sum-aggregation genomes with registered vectorizable activations
compile; anything else raises :class:`CompileError` (the evaluator falls
back to the scalar network for those genomes, so mixed populations still
evaluate correctly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import GenomeConfig
from .genome import Genome
from .network import FeedForwardNetwork, feed_forward_layers


class CompileError(ValueError):
    """Raised for genomes the dense compiler cannot express."""


# ---------------------------------------------------------------------------
# vectorized activations
#
# Each entry mirrors its scalar twin in repro.neat.activations operation
# for operation (same clamps, same formula) so compiled outputs agree
# with the node-by-node reference to float rounding.


def _sigmoid(z):
    return 1.0 / (1.0 + np.exp(-np.clip(5.0 * z, -60.0, 60.0)))


def _tanh(z):
    return np.tanh(np.clip(2.5 * z, -60.0, 60.0))


def _sin(z):
    return np.sin(np.clip(5.0 * z, -60.0, 60.0))


def _gauss(z):
    z = np.clip(z, -3.4, 3.4)
    return np.exp(-5.0 * z * z)


def _relu(z):
    return np.where(z > 0.0, z, 0.0)


def _elu(z):
    # exp() evaluated on the clipped negative branch only, so the unused
    # half of the where() never overflows.
    return np.where(z > 0.0, z, np.exp(np.clip(z, -60.0, 0.0)) - 1.0)


def _lelu(z):
    return np.where(z > 0.0, z, 0.005 * z)


def _identity(z):
    return z


def _clamped(z):
    return np.clip(z, -1.0, 1.0)


def _inv(z):
    small = np.abs(z) < 1e-7
    return np.where(small, 0.0, 1.0 / np.where(small, 1.0, z))


def _log(z):
    return np.log(np.maximum(1e-7, z))


def _exp(z):
    return np.exp(np.clip(z, -60.0, 60.0))


def _abs(z):
    return np.abs(z)


def _hat(z):
    return np.maximum(0.0, 1.0 - np.abs(z))


def _square(z):
    z = np.clip(z, -1e8, 1e8)
    return z * z


def _cube(z):
    z = np.clip(z, -1e6, 1e6)
    return z * z * z


_VECTORIZED: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sigmoid": _sigmoid,
    "tanh": _tanh,
    "sin": _sin,
    "gauss": _gauss,
    "relu": _relu,
    "elu": _elu,
    "lelu": _lelu,
    "identity": _identity,
    "clamped": _clamped,
    "inv": _inv,
    "log": _log,
    "exp": _exp,
    "abs": _abs,
    "hat": _hat,
    "square": _square,
    "cube": _cube,
}


def register_vectorized_activation(
    name: str, function: Callable[[np.ndarray], np.ndarray]
) -> None:
    """Register a numpy twin for a custom scalar activation."""
    if not callable(function):
        raise TypeError(f"vectorized activation {name!r} is not callable")
    _VECTORIZED[name] = function


def vectorized_activation_names() -> List[str]:
    return sorted(_VECTORIZED)


# ---------------------------------------------------------------------------
# per-genome compilation


@dataclass
class LayerPlan:
    """One levelisation wave as dense arrays over the value buffer."""

    node_cols: List[int]  # value-buffer column written per updated node
    links: List[List[Tuple[int, float]]]  # per node: (source column, weight)
    bias: np.ndarray  # (n,)
    response: np.ndarray  # (n,)
    activations: Tuple[str, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.node_cols)


class CompiledNetwork:
    """Dense per-layer execution plan for one genome.

    The value buffer lays inputs out at columns ``0..num_inputs-1`` (in
    ``config.input_keys`` order) and outputs at the next ``num_outputs``
    columns, identically for every genome of a population, so stacked
    plans can share observation scatter and output gather.
    """

    def __init__(
        self,
        genome_key: int,
        num_inputs: int,
        num_outputs: int,
        num_columns: int,
        layers: List[LayerPlan],
        num_macs: int,
    ) -> None:
        self.genome_key = genome_key
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.num_columns = num_columns
        self.layers = layers
        self.num_macs = num_macs
        self._dense: Optional[List[np.ndarray]] = None

    def _dense_weights(self) -> List[np.ndarray]:
        if self._dense is None:
            self._dense = []
            for layer in self.layers:
                weights = np.zeros((layer.num_nodes, self.num_columns))
                for row, links in enumerate(layer.links):
                    for col, weight in links:
                        weights[row, col] = weight
                self._dense.append(weights)
        return self._dense

    def activate_batch(self, observations: np.ndarray) -> np.ndarray:
        """Forward ``(batch, num_inputs)`` observations to ``(batch, num_outputs)``."""
        observations = np.asarray(observations, dtype=np.float64)
        if observations.ndim != 2 or observations.shape[1] != self.num_inputs:
            raise ValueError(
                f"expected (batch, {self.num_inputs}) observations, "
                f"got {observations.shape}"
            )
        batch = observations.shape[0]
        values = np.zeros((batch, self.num_columns))
        values[:, : self.num_inputs] = observations
        for layer, weights in zip(self.layers, self._dense_weights()):
            pre = layer.bias + layer.response * (values @ weights.T)
            post = np.zeros_like(pre)
            for name in set(layer.activations):
                rows = [i for i, a in enumerate(layer.activations) if a == name]
                post[:, rows] = _VECTORIZED[name](pre[:, rows])
            values[:, layer.node_cols] = post
        return values[:, self.num_inputs : self.num_inputs + self.num_outputs]

    def activate(self, inputs: Sequence[float]) -> List[float]:
        """Single forward pass, mirroring ``FeedForwardNetwork.activate``."""
        return list(self.activate_batch(np.asarray(inputs, dtype=np.float64)[None, :])[0])


def compile_network(genome: Genome, config: GenomeConfig) -> CompiledNetwork:
    """Levelise ``genome`` and build its dense per-layer plan.

    Raises :class:`CompileError` for genomes a matrix-vector wave cannot
    express: non-sum aggregations and activations without a registered
    numpy twin (the same restriction the ADAM systolic model has).
    """
    enabled = [key for key, conn in genome.connections.items() if conn.enabled]
    layers = feed_forward_layers(config.input_keys, config.output_keys, enabled)
    incoming: Dict[int, List[Tuple[int, float]]] = {}
    for (src, dst), conn in genome.connections.items():
        if conn.enabled:
            incoming.setdefault(dst, []).append((src, conn.weight))

    columns: Dict[int, int] = {key: i for i, key in enumerate(config.input_keys)}
    for key in config.output_keys:
        columns.setdefault(key, len(columns))

    plan_layers: List[LayerPlan] = []
    num_macs = 0
    for layer in layers:
        nodes = list(layer)
        links_by_node = {n: sorted(incoming.get(n, [])) for n in nodes}
        # Sources first (sorted), then the layer's own nodes: matches the
        # scalar evaluator's sorted-link iteration for reproducibility.
        for src in sorted({s for n in nodes for s, _ in links_by_node[n]}):
            columns.setdefault(src, len(columns))
        for n in nodes:
            columns.setdefault(n, len(columns))
        bias = np.empty(len(nodes))
        response = np.empty(len(nodes))
        activations = []
        links: List[List[Tuple[int, float]]] = []
        for row, n in enumerate(nodes):
            node = genome.nodes[n]
            if node.aggregation != "sum":
                raise CompileError(
                    f"node {n} uses aggregation {node.aggregation!r}; "
                    "dense plans pack sum-aggregation genomes only"
                )
            if node.activation not in _VECTORIZED:
                raise CompileError(
                    f"node {n} uses activation {node.activation!r} with no "
                    "registered vectorized twin"
                )
            bias[row] = node.bias
            response[row] = node.response
            activations.append(node.activation)
            links.append([(columns[s], w) for s, w in links_by_node[n]])
            num_macs += len(links_by_node[n])
        plan_layers.append(
            LayerPlan(
                node_cols=[columns[n] for n in nodes],
                links=links,
                bias=bias,
                response=response,
                activations=tuple(activations),
            )
        )
    return CompiledNetwork(
        genome_key=genome.key,
        num_inputs=len(config.input_keys),
        num_outputs=len(config.output_keys),
        num_columns=len(columns),
        layers=plan_layers,
        num_macs=num_macs,
    )


# ---------------------------------------------------------------------------
# population stacking


class StackedPlans:
    """A population's plans padded to one envelope and stacked.

    Every genome gets its own ``(layers, nodes, columns)`` weight block;
    padding rows carry zero bias/response and scatter into a trash
    column, so one batched matmul per layer serves structurally diverse
    genomes without grouping.  ``PAD`` activation slots are written as
    0.0 (finite), keeping the trash column out of NaN territory for the
    full-width products of later layers.
    """

    def __init__(self, plans: Sequence[CompiledNetwork]) -> None:
        if not plans:
            raise ValueError("cannot stack an empty plan list")
        self.plans = list(plans)
        self.num_inputs = plans[0].num_inputs
        self.num_outputs = plans[0].num_outputs
        num_plans = len(plans)
        self.num_layers = max(len(p.layers) for p in plans)
        max_nodes = max((l.num_nodes for p in plans for l in p.layers), default=1)
        max_cols = max(p.num_columns for p in plans)
        self.trash_col = max_cols
        self.num_columns = max_cols + 1

        shape = (num_plans, self.num_layers, max_nodes)
        self.weights = np.zeros(shape + (self.num_columns,))
        self.bias = np.zeros(shape)
        self.response = np.zeros(shape)
        self.node_cols = np.full(shape, self.trash_col, dtype=np.intp)
        self.macs = np.array([p.num_macs for p in plans], dtype=np.int64)
        # -1 marks padding; real slots hold an index into self.act_fns.
        self.act_codes = np.full(shape, -1, dtype=np.int16)
        act_index: Dict[str, int] = {}
        self.act_fns: List[Callable[[np.ndarray], np.ndarray]] = []
        for g, plan in enumerate(plans):
            for l, layer in enumerate(plan.layers):
                n = layer.num_nodes
                self.bias[g, l, :n] = layer.bias
                self.response[g, l, :n] = layer.response
                self.node_cols[g, l, :n] = layer.node_cols
                for row, links in enumerate(layer.links):
                    for col, weight in links:
                        self.weights[g, l, row, col] = weight
                for row, name in enumerate(layer.activations):
                    if name not in act_index:
                        act_index[name] = len(self.act_fns)
                        self.act_fns.append(_VECTORIZED[name])
                    self.act_codes[g, l, row] = act_index[name]
        #: Per layer: the single activation serving every real slot (the
        #: overwhelmingly common single-option config fast path), or None
        #: when the layer mixes activations and needs per-code masking.
        self.layer_act: List[Optional[Callable[[np.ndarray], np.ndarray]]] = []
        for l in range(self.num_layers):
            codes = {c for c in self.act_codes[:, l].ravel().tolist() if c >= 0}
            if len(codes) == 1:
                self.layer_act.append(self.act_fns[codes.pop()])
            elif not codes:  # all-padding layer (cannot happen for l < depth)
                self.layer_act.append(_identity)
            else:
                self.layer_act.append(None)

    def lane_runner(self, lane_plans: Sequence[int]) -> "LaneRunner":
        """A rollout view with one row per lane (``lane_plans[i]`` is the
        plan index backing lane ``i``)."""
        return LaneRunner(self, np.asarray(lane_plans, dtype=np.intp))


class LaneRunner:
    """Per-lane compacted view of :class:`StackedPlans` for one rollout.

    Implements the ``step(obs) -> outputs`` / ``prune(keep)`` policy
    protocol of :func:`repro.envs.evaluate.run_episodes_batched`.  All
    per-lane arrays are gathered once at construction and compacted in
    step with the environment, so the hot loop is pure sliced numpy.
    """

    def __init__(self, stacked: StackedPlans, lane_plans: np.ndarray) -> None:
        self._stacked = stacked
        self.weights = stacked.weights[lane_plans]
        self.bias = stacked.bias[lane_plans]
        self.response = stacked.response[lane_plans]
        self.node_cols = stacked.node_cols[lane_plans]
        self.act_codes = stacked.act_codes[lane_plans]
        self.num_inputs = stacked.num_inputs
        self.num_outputs = stacked.num_outputs
        self.num_columns = stacked.num_columns

    def step(self, observations: np.ndarray) -> np.ndarray:
        stacked = self._stacked
        lanes = observations.shape[0]
        values = np.zeros((lanes, self.num_columns))
        values[:, : self.num_inputs] = observations
        rows = np.arange(lanes)[:, None]
        for l in range(stacked.num_layers):
            pre = self.bias[:, l] + self.response[:, l] * np.matmul(
                self.weights[:, l], values[:, :, None]
            )[:, :, 0]
            layer_fn = stacked.layer_act[l]
            if layer_fn is not None:
                post = layer_fn(pre)
            else:
                post = np.zeros_like(pre)
                codes = self.act_codes[:, l]
                for code, fn in enumerate(stacked.act_fns):
                    mask = codes == code
                    if mask.any():
                        post[mask] = fn(pre[mask])
            values[rows, self.node_cols[:, l]] = post
        return values[:, self.num_inputs : self.num_inputs + self.num_outputs]

    def prune(self, keep: np.ndarray) -> None:
        self.weights = self.weights[keep]
        self.bias = self.bias[keep]
        self.response = self.response[keep]
        self.node_cols = self.node_cols[keep]
        self.act_codes = self.act_codes[keep]


# ---------------------------------------------------------------------------
# population-level batched evaluation


def _levelised_depth(genome: Genome, config: GenomeConfig) -> int:
    """Waves per forward pass — :func:`repro.core.trace._mean_depth`'s
    per-genome term, for genomes that did not compile."""
    enabled = [k for k, c in genome.connections.items() if c.enabled]
    try:
        return len(
            feed_forward_layers(config.input_keys, config.output_keys, enabled)
        )
    except ValueError:
        return 1


def evaluate_genomes_batched(
    tasks: Sequence[Tuple[Genome, Sequence[int]]],
    genome_config: GenomeConfig,
    env_batch,
    max_steps: Optional[int] = None,
    scalar_env=None,
    plan_info: Optional[Dict] = None,
) -> List[Tuple[int, List[float], int, int]]:
    """Evaluate ``(genome, episode_seeds)`` tasks through stacked plans.

    Returns ``(genome_key, rewards, env_steps, inference_macs)`` per task
    in input order — the same contract the parallel workers use, so
    serial, pooled and vectorized evaluation all assemble fitnesses
    identically.  Genomes that fail to compile (exotic aggregation or
    activation) are evaluated with the scalar network on the same seeds.

    ``plan_info``, when given a dict, receives ``{"depths": {genome_key:
    levelised depth}}`` as a by-product of compilation, so analytical
    cost models can reuse the levelisation instead of re-deriving it per
    genome (the depths are the exact ``feed_forward_layers`` counts).
    """
    # Imported here: repro.envs modules import repro.neat submodules, so
    # a module-level import would be circular when this file is loaded
    # from the repro.neat package __init__.
    from ..envs.evaluate import run_episode, run_episodes_batched
    from .. import obs

    plans: List[Optional[CompiledNetwork]] = []
    with obs.span("compile", genomes=len(tasks)) as sp:
        for genome, _seeds in tasks:
            try:
                plans.append(compile_network(genome, genome_config))
            except CompileError:
                plans.append(None)
        sp.set(compiled=sum(1 for p in plans if p is not None))

    if plan_info is not None:
        plan_info["depths"] = {
            genome.key: (
                len(plan.layers)
                if plan is not None
                else _levelised_depth(genome, genome_config)
            )
            for (genome, _seeds), plan in zip(tasks, plans)
        }

    results: List[Optional[Tuple[int, List[float], int, int]]] = [None] * len(tasks)

    compiled_idx = [i for i, p in enumerate(plans) if p is not None]
    if compiled_idx:
        stacked = StackedPlans([plans[i] for i in compiled_idx])
        lane_plans: List[int] = []
        lane_seeds: List[int] = []
        lane_macs: List[int] = []
        lane_task: List[int] = []
        for slot, i in enumerate(compiled_idx):
            _genome, seeds = tasks[i]
            for seed in seeds:
                lane_plans.append(slot)
                lane_seeds.append(seed)
                lane_macs.append(stacked.macs[slot])
                lane_task.append(i)
        with obs.span(
            "rollout", genomes=len(compiled_idx), lanes=len(lane_seeds)
        ):
            episodes = run_episodes_batched(
                stacked.lane_runner(lane_plans),
                env_batch,
                lane_seeds,
                max_steps=max_steps,
                macs_per_pass=lane_macs,
            )
        lane_cursor = 0
        for i in compiled_idx:
            genome, seeds = tasks[i]
            lane_results = episodes[lane_cursor : lane_cursor + len(seeds)]
            lane_cursor += len(seeds)
            results[i] = (
                genome.key,
                [r.total_reward for r in lane_results],
                sum(r.steps for r in lane_results),
                sum(r.inference_macs for r in lane_results),
            )

    fallback_idx = [i for i, p in enumerate(plans) if p is None]
    if fallback_idx:
        if scalar_env is None:
            from ..envs.registry import make

            scalar_env = make(env_batch.env_id)
        with obs.span("fallback", genomes=len(fallback_idx)):
            for i in fallback_idx:
                genome, seeds = tasks[i]
                network = FeedForwardNetwork.create(genome, genome_config)
                rewards: List[float] = []
                steps = 0
                macs = 0
                for seed in seeds:
                    scalar_env.seed(seed)
                    result = run_episode(network, scalar_env, max_steps)
                    rewards.append(result.total_reward)
                    steps += result.steps
                    macs += result.inference_macs
                results[i] = (genome.key, rewards, steps, macs)

    return [r for r in results if r is not None]


class BatchedEvaluator:
    """Vectorized drop-in for :class:`repro.envs.evaluate.FitnessEvaluator`.

    Same constructor surface, same callable protocol
    (``evaluator(genomes, config)``), same ``totals`` accounting and —
    crucially — the same per-genome derived episode seeds, so a fixed
    experiment seed produces the same fitness trajectory whether a
    generation is evaluated scalar, pooled or vectorized.
    """

    def __init__(
        self,
        env_id: str,
        episodes: int = 1,
        max_steps: Optional[int] = None,
        seed: Optional[int] = 0,
        fitness_transform: Optional[Callable[[float], float]] = None,
        start_generation: int = 0,
        scenario=None,
    ) -> None:
        from ..envs.evaluate import EvaluationTotals

        self.env_id = env_id
        self.episodes = episodes
        self.max_steps = max_steps
        self.seed = seed
        self.fitness_transform = fitness_transform
        self.scenario = scenario
        self.totals = EvaluationTotals()
        #: Mean levelised depth of the last evaluated generation — the
        #: ``feed_forward_layers`` counts fall out of compilation, so
        #: analytical cost models can read this instead of re-levelising
        #: every genome (None until the first call).
        self.last_mean_depth: Optional[float] = None
        # Episode seeds derive from the generation index, so a resumed
        # run must restart the counter where the checkpoint left off.
        self._generation = start_generation
        self._env_batch = None
        self._scalar_env = None

    def _episode_seeds(self, genome: Genome) -> List[int]:
        # The one canonical derivation — parity is load-bearing.
        from ..envs.seeding import episode_seed

        return [
            episode_seed(self.seed, self._generation, genome.key, episode)
            for episode in range(self.episodes)
        ]

    def __call__(self, genomes: List[Genome], config) -> None:
        if self._env_batch is None:
            if self.scenario is not None:
                # Scenario-aware construction: a perturbed/wrapped env is
                # rejected by the vectorized template check and runs on
                # the lockstep fallback; the non-compilable-genome scalar
                # fallback below must replay the same wrapped env.
                from ..scenarios import build_batched_env, build_env

                self._env_batch = build_batched_env(self.scenario)
                self._scalar_env = build_env(self.scenario)
            else:
                from ..envs.batched import make_batched

                self._env_batch = make_batched(self.env_id)
        tasks = [(genome, self._episode_seeds(genome)) for genome in genomes]
        plan_info: Dict = {}
        outcomes = evaluate_genomes_batched(
            tasks, config.genome, self._env_batch, max_steps=self.max_steps,
            scalar_env=self._scalar_env, plan_info=plan_info,
        )
        depths = plan_info.get("depths")
        self.last_mean_depth = (
            sum(depths.values()) / len(depths) if depths else None
        )
        for genome, (key, rewards, steps, macs) in zip(genomes, outcomes):
            if key != genome.key:
                raise RuntimeError(
                    f"batched evaluation order mismatch: {key} != {genome.key}"
                )
            fitness = sum(rewards) / len(rewards)
            if self.fitness_transform is not None:
                fitness = self.fitness_transform(fitness)
            genome.fitness = fitness
            self.totals.episodes += len(rewards)
            self.totals.steps += steps
            self.totals.macs += macs
        self._generation += 1
