"""From-scratch NEAT (NeuroEvolution of Augmenting Topologies).

The learning-algorithm substrate of the GeneSys reproduction: genes,
genomes, speciation with fitness sharing, reproduction, and feed-forward
phenotype evaluation, instrumented so every figure in the paper's
characterisation (Figs. 4-5, 11a) can be regenerated.
"""

from .activations import ACTIVATION_CODES, ACTIVATION_NAMES, ActivationFunctionSet
from .backprop import (
    DifferentiableNetwork,
    TrainResult,
    UntrainableGenomeError,
    finetune_genome,
)
from .hyperneat import (
    CPPN_ACTIVATIONS,
    HyperNEATDecoder,
    Substrate,
    SubstrateNode,
    cppn_config,
    evolve_hyperneat,
)
from .aggregations import AGGREGATION_CODES, AGGREGATION_NAMES, AggregationFunctionSet
from .config import (
    ConfigError,
    GenomeConfig,
    NEATConfig,
    ReproductionConfig,
    SpeciesConfig,
)
from .genes import BaseGene, ConnectionGene, NodeGene, gene_sort_key, sorted_genes
from .genome import Genome, MutationCounts, creates_cycle
from .innovation import InnovationTracker
from .serialize import (
    DeserializationError,
    genome_from_dict,
    genome_to_dict,
    load_genome,
    load_genome_with_config,
    load_population,
    save_genome,
    save_population,
)
from .compiled import (
    BatchedEvaluator,
    CompileError,
    CompiledNetwork,
    StackedPlans,
    compile_network,
    register_vectorized_activation,
    vectorized_activation_names,
)
from .network import FeedForwardNetwork, feed_forward_layers, required_for_output
from .population import Population
from .reproduction import (
    CompleteExtinctionError,
    Reproduction,
    ReproductionEvent,
    ReproductionPlan,
)
from .species import Species, SpeciesSet
from .stagnation import Stagnation
from .statistics import GENE_BYTES, GenerationStats, StatisticsReporter

__all__ = [
    "ACTIVATION_CODES",
    "ACTIVATION_NAMES",
    "ActivationFunctionSet",
    "AGGREGATION_CODES",
    "AGGREGATION_NAMES",
    "AggregationFunctionSet",
    "BaseGene",
    "BatchedEvaluator",
    "CompileError",
    "CompiledNetwork",
    "CompleteExtinctionError",
    "ConfigError",
    "ConnectionGene",
    "FeedForwardNetwork",
    "StackedPlans",
    "GENE_BYTES",
    "GenerationStats",
    "Genome",
    "GenomeConfig",
    "InnovationTracker",
    "MutationCounts",
    "NEATConfig",
    "NodeGene",
    "Population",
    "Reproduction",
    "ReproductionConfig",
    "ReproductionEvent",
    "ReproductionPlan",
    "Species",
    "SpeciesConfig",
    "SpeciesSet",
    "Stagnation",
    "StatisticsReporter",
    "compile_network",
    "creates_cycle",
    "feed_forward_layers",
    "gene_sort_key",
    "register_vectorized_activation",
    "required_for_output",
    "sorted_genes",
    "vectorized_activation_names",
]
