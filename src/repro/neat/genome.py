"""NEAT genome: a collection of genes that uniquely describes one NN.

Implements the four reproduction operations of Fig. 3(d) — crossover,
perturbation, gene addition, gene deletion — plus the compatibility
distance used for speciation.  Networks are kept feed-forward (acyclic):
the paper's inference engine processes "an acyclic directed graph"
(Section III-C2).

Every mutating entry point returns/accumulates op counts into a
:class:`MutationCounts` record; these counters drive the Fig. 5(a)
characterisation and the reproduction traces consumed by the hardware
simulators (Section VI-A: "generate a trace of reproduction operations").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .config import GenomeConfig
from .genes import BaseGene, ConnectionGene, NodeGene
from .innovation import InnovationTracker

ConnKey = Tuple[int, int]


@dataclass
class MutationCounts:
    """Operation counters for one reproduction event (or an aggregate).

    Field names follow the paper's op taxonomy: crossovers happen per gene
    during mating, perturbations per attribute-mutated gene, and add/delete
    per structural mutation.
    """

    crossovers: int = 0
    perturbations: int = 0
    node_additions: int = 0
    node_deletions: int = 0
    conn_additions: int = 0
    conn_deletions: int = 0

    @property
    def mutations(self) -> int:
        return (
            self.perturbations
            + self.node_additions
            + self.node_deletions
            + self.conn_additions
            + self.conn_deletions
        )

    @property
    def total(self) -> int:
        return self.crossovers + self.mutations

    def merge(self, other: "MutationCounts") -> None:
        self.crossovers += other.crossovers
        self.perturbations += other.perturbations
        self.node_additions += other.node_additions
        self.node_deletions += other.node_deletions
        self.conn_additions += other.conn_additions
        self.conn_deletions += other.conn_deletions


def creates_cycle(connections: Iterable[ConnKey], test: ConnKey) -> bool:
    """Would adding ``test`` to the existing ``connections`` create a cycle?

    Standard reachability walk: a new edge (a, b) creates a cycle iff a is
    reachable from b through existing edges (or a == b).
    """
    a, b = test
    if a == b:
        return True
    visited: Set[int] = {b}
    frontier = [b]
    adjacency: Dict[int, List[int]] = {}
    for src, dst in connections:
        adjacency.setdefault(src, []).append(dst)
    while frontier:
        node = frontier.pop()
        if node == a:
            return True
        for nxt in adjacency.get(node, ()):  # pragma: no branch
            if nxt not in visited:
                visited.add(nxt)
                frontier.append(nxt)
    return False


class Genome:
    """One individual: node genes + connection genes + a fitness value.

    Input nodes use negative ids and do not own :class:`NodeGene` objects;
    outputs are ids ``0..num_outputs-1``; hidden nodes take ids assigned by
    the :class:`InnovationTracker`.
    """

    def __init__(self, key: int) -> None:
        self.key = key
        self.nodes: Dict[int, NodeGene] = {}
        self.connections: Dict[ConnKey, ConnectionGene] = {}
        self.fitness: Optional[float] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def configure_new(self, config: GenomeConfig, rng: random.Random) -> None:
        """Initialise the minimal topology of Section III-B.

        Output nodes plus (optionally) a full input->output connection mesh
        whose weights default to zero, exactly as the paper describes.
        """
        self.nodes.clear()
        self.connections.clear()
        for out_key in config.output_keys:
            self.nodes[out_key] = NodeGene.random_init(out_key, config, rng)
        if config.initial_connection == "full":
            for in_key in config.input_keys:
                for out_key in config.output_keys:
                    key = (in_key, out_key)
                    if config.initial_weight is None:
                        conn = ConnectionGene.random_init(key, config, rng)
                    else:
                        conn = ConnectionGene(key, weight=config.initial_weight, enabled=True)
                    self.connections[key] = conn

    @classmethod
    def crossover(
        cls,
        key: int,
        parent1: "Genome",
        parent2: "Genome",
        config: GenomeConfig,
        rng: random.Random,
        counts: Optional[MutationCounts] = None,
    ) -> "Genome":
        """Mate two parents; ``parent1`` must be the fitter one.

        Homologous genes (matching keys) are crossed attribute-wise with
        the configured bias; disjoint/excess genes are inherited from the
        fitter parent — the classic NEAT rule, and what the Gene Split
        block's stream alignment implements in hardware.
        """
        if (
            parent1.fitness is not None
            and parent2.fitness is not None
            and parent2.fitness > parent1.fitness
        ):
            parent1, parent2 = parent2, parent1
        child = cls(key)
        for node_key, node1 in parent1.nodes.items():
            node2 = parent2.nodes.get(node_key)
            if node2 is None:
                child.nodes[node_key] = node1.copy()
            else:
                child.nodes[node_key] = node1.crossover(node2, rng, config.crossover_bias)
                if counts is not None:
                    counts.crossovers += 1
        for conn_key, conn1 in parent1.connections.items():
            conn2 = parent2.connections.get(conn_key)
            if conn2 is None:
                child.connections[conn_key] = conn1.copy()
            else:
                child.connections[conn_key] = conn1.crossover(conn2, rng, config.crossover_bias)
                if counts is not None:
                    counts.crossovers += 1
        return child

    def copy(self, key: Optional[int] = None) -> "Genome":
        clone = Genome(self.key if key is None else key)
        clone.nodes = {k: g.copy() for k, g in self.nodes.items()}
        clone.connections = {k: g.copy() for k, g in self.connections.items()}
        clone.fitness = self.fitness
        return clone

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def mutate(
        self,
        config: GenomeConfig,
        rng: random.Random,
        innovations: InnovationTracker,
        counts: Optional[MutationCounts] = None,
    ) -> MutationCounts:
        """Apply structural + attribute mutations in place."""
        if counts is None:
            counts = MutationCounts()
        if config.single_structural_mutation:
            div = max(
                1e-9,
                config.node_add_prob
                + config.node_delete_prob
                + config.conn_add_prob
                + config.conn_delete_prob,
            )
            r = rng.random()
            if r < config.node_add_prob / div:
                self.mutate_add_node(config, rng, innovations, counts)
            elif r < (config.node_add_prob + config.node_delete_prob) / div:
                self.mutate_delete_node(config, rng, counts)
            elif r < (
                config.node_add_prob + config.node_delete_prob + config.conn_add_prob
            ) / div:
                self.mutate_add_connection(config, rng, counts)
            else:
                self.mutate_delete_connection(rng, counts)
        else:
            if rng.random() < config.node_add_prob:
                self.mutate_add_node(config, rng, innovations, counts)
            if rng.random() < config.node_delete_prob:
                self.mutate_delete_node(config, rng, counts)
            if rng.random() < config.conn_add_prob:
                self.mutate_add_connection(config, rng, counts)
            if rng.random() < config.conn_delete_prob:
                self.mutate_delete_connection(rng, counts)

        for node in self.nodes.values():
            counts.perturbations += node.mutate(config, rng)
        for conn in self.connections.values():
            counts.perturbations += conn.mutate(config, rng)
        return counts

    def mutate_add_node(
        self,
        config: GenomeConfig,
        rng: random.Random,
        innovations: InnovationTracker,
        counts: Optional[MutationCounts] = None,
    ) -> Optional[int]:
        """Split an existing connection with a new node.

        Matches the hardware Add Gene engine (Section IV-C3): "the logic
        inserts a new gene with default attributes and a node ID greater
        than any other node present in the network.  Additionally two new
        connection genes are generated and the incoming connection gene is
        dropped."  (We disable rather than drop the old connection, the
        standard NEAT softening that preserves the paper's semantics.)
        """
        if not self.connections:
            return None
        conn = rng.choice(list(self.connections.values()))
        new_id = innovations.get_split_node_id(conn.source, conn.dest)
        if new_id in self.nodes:
            # Another mutation already introduced this split in this genome.
            new_id = innovations.fresh_node_id()
        node = NodeGene(
            new_id,
            bias=0.0,
            response=1.0,
            activation=config.activation_default,
            aggregation=config.aggregation_default,
        )
        self.nodes[new_id] = node
        conn.enabled = False
        self.connections[(conn.source, new_id)] = ConnectionGene(
            (conn.source, new_id), weight=1.0, enabled=True
        )
        self.connections[(new_id, conn.dest)] = ConnectionGene(
            (new_id, conn.dest), weight=conn.weight, enabled=True
        )
        if counts is not None:
            counts.node_additions += 1
        return new_id

    def mutate_delete_node(
        self,
        config: GenomeConfig,
        rng: random.Random,
        counts: Optional[MutationCounts] = None,
    ) -> Optional[int]:
        """Delete a hidden node and prune its dangling connections.

        The hardware Delete Gene engine nullifies the node, stores its id,
        and "compare[s it] with the source and destination IDs of any of
        the connection genes to ensure no dangling connection exist[s]".
        """
        output_keys = set(config.output_keys)
        candidates = [k for k in self.nodes if k not in output_keys]
        if not candidates:
            return None
        victim = rng.choice(candidates)
        del self.nodes[victim]
        dangling = [k for k in self.connections if victim in k]
        for key in dangling:
            del self.connections[key]
        if counts is not None:
            counts.node_deletions += 1
            counts.conn_deletions += len(dangling)
        return victim

    def mutate_add_connection(
        self,
        config: GenomeConfig,
        rng: random.Random,
        counts: Optional[MutationCounts] = None,
    ) -> Optional[ConnKey]:
        """Add a new feed-forward connection between existing nodes."""
        possible_sources = config.input_keys + list(self.nodes)
        possible_dests = list(self.nodes)
        if not possible_dests:
            return None
        source = rng.choice(possible_sources)
        dest = rng.choice(possible_dests)
        key = (source, dest)
        if key in self.connections:
            # Re-enable a disabled duplicate rather than duplicating genes.
            existing = self.connections[key]
            if not existing.enabled:
                existing.enabled = True
                if counts is not None:
                    counts.conn_additions += 1
                return key
            return None
        if dest in config.input_keys:
            return None
        enabled_keys = [k for k, c in self.connections.items()]
        if creates_cycle(enabled_keys, key):
            return None
        self.connections[key] = ConnectionGene.random_init(key, config, rng)
        if counts is not None:
            counts.conn_additions += 1
        return key

    def mutate_delete_connection(
        self, rng: random.Random, counts: Optional[MutationCounts] = None
    ) -> Optional[ConnKey]:
        if not self.connections:
            return None
        key = rng.choice(list(self.connections))
        del self.connections[key]
        if counts is not None:
            counts.conn_deletions += 1
        return key

    # ------------------------------------------------------------------
    # compatibility distance (speciation)
    # ------------------------------------------------------------------

    def distance(self, other: "Genome", config: GenomeConfig) -> float:
        """NEAT compatibility distance between two genomes."""
        node_distance = 0.0
        if self.nodes or other.nodes:
            disjoint = 0
            homologous = 0.0
            for key, node in self.nodes.items():
                other_node = other.nodes.get(key)
                if other_node is None:
                    disjoint += 1
                else:
                    homologous += node.distance(other_node, config)
            disjoint += sum(1 for key in other.nodes if key not in self.nodes)
            max_nodes = max(len(self.nodes), len(other.nodes))
            node_distance = (
                homologous + config.compatibility_disjoint_coefficient * disjoint
            ) / max(1, max_nodes)

        conn_distance = 0.0
        if self.connections or other.connections:
            disjoint = 0
            homologous = 0.0
            for key, conn in self.connections.items():
                other_conn = other.connections.get(key)
                if other_conn is None:
                    disjoint += 1
                else:
                    homologous += conn.distance(other_conn, config)
            disjoint += sum(1 for key in other.connections if key not in self.connections)
            max_conns = max(len(self.connections), len(other.connections))
            conn_distance = (
                homologous + config.compatibility_disjoint_coefficient * disjoint
            ) / max(1, max_conns)
        return node_distance + conn_distance

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def size(self) -> Tuple[int, int]:
        """(enabled connection count, node count) — neat-python convention."""
        enabled = sum(1 for c in self.connections.values() if c.enabled)
        return enabled, len(self.nodes)

    @property
    def num_genes(self) -> int:
        """Total gene count — the Fig. 4(b) metric."""
        return len(self.nodes) + len(self.connections)

    def iter_genes_hw_order(self) -> Iterator[BaseGene]:
        """Stream genes in hardware order (Section IV-C5).

        "the node genes are streamed first ... Once the nodes are streamed,
        connection genes are streamed"; within each cluster ids ascend.
        """
        for key in sorted(self.nodes):
            yield self.nodes[key]
        for key in sorted(self.connections):
            yield self.connections[key]

    def validate(self, config: GenomeConfig) -> None:
        """Raise ``ValueError`` on structural invariant violations."""
        input_keys = set(config.input_keys)
        valid_endpoints = input_keys | set(self.nodes)
        for key in config.output_keys:
            if key not in self.nodes:
                raise ValueError(f"genome {self.key}: missing output node {key}")
        for (src, dst), conn in self.connections.items():
            if conn.key != (src, dst):
                raise ValueError(f"genome {self.key}: connection key mismatch at {(src, dst)}")
            if src not in valid_endpoints:
                raise ValueError(f"genome {self.key}: dangling connection source {src}")
            if dst not in self.nodes:
                raise ValueError(f"genome {self.key}: dangling connection dest {dst}")
            if dst in input_keys:
                raise ValueError(f"genome {self.key}: connection into input node {dst}")
        if self.has_cycle():
            raise ValueError(f"genome {self.key}: network is not acyclic")

    def has_cycle(self) -> bool:
        adjacency: Dict[int, List[int]] = {}
        for src, dst in self.connections:
            adjacency.setdefault(src, []).append(dst)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[int, int] = {}

        def visit(node: int) -> bool:
            colour[node] = GREY
            for nxt in adjacency.get(node, ()):
                state = colour.get(nxt, WHITE)
                if state == GREY:
                    return True
                if state == WHITE and visit(nxt):
                    return True
            colour[node] = BLACK
            return False

        return any(
            visit(node) for node in list(adjacency) if colour.get(node, WHITE) == WHITE
        )

    def __repr__(self) -> str:
        return (
            f"Genome(key={self.key}, nodes={len(self.nodes)}, "
            f"connections={len(self.connections)}, fitness={self.fitness})"
        )
