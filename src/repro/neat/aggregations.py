"""Aggregation functions for NEAT node genes.

Each node gene carries an ``aggregation`` attribute (Fig. 6 of the paper)
that selects how incoming weighted activations are combined before the
activation function is applied.  ``sum`` is the classic neural-network
choice and the default everywhere in this repo.
"""

from __future__ import annotations

from functools import reduce
from operator import mul
from typing import Callable, Dict, Iterable, Iterator

AggregationFunction = Callable[[Iterable[float]], float]


def sum_aggregation(values: Iterable[float]) -> float:
    return sum(values)


def product_aggregation(values: Iterable[float]) -> float:
    return reduce(mul, values, 1.0)


def max_aggregation(values: Iterable[float]) -> float:
    values = list(values)
    return max(values) if values else 0.0


def min_aggregation(values: Iterable[float]) -> float:
    values = list(values)
    return min(values) if values else 0.0


def maxabs_aggregation(values: Iterable[float]) -> float:
    values = list(values)
    return max(values, key=abs) if values else 0.0


def mean_aggregation(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def median_aggregation(values: Iterable[float]) -> float:
    values = sorted(values)
    if not values:
        return 0.0
    n = len(values)
    mid = n // 2
    if n % 2:
        return values[mid]
    return 0.5 * (values[mid - 1] + values[mid])


class InvalidAggregationError(KeyError):
    """Raised when a genome references an unregistered aggregation."""


class AggregationFunctionSet:
    """Registry mapping aggregation names to callables."""

    def __init__(self) -> None:
        self._functions: Dict[str, AggregationFunction] = {}
        for name, fn in _BUILTINS.items():
            self.add(name, fn)

    def add(self, name: str, function: AggregationFunction) -> None:
        if not callable(function):
            raise TypeError(f"aggregation {name!r} is not callable")
        self._functions[name] = function

    def get(self, name: str) -> AggregationFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise InvalidAggregationError(
                f"unknown aggregation {name!r}; known: {sorted(self._functions)}"
            ) from None

    def is_valid(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> Iterator[str]:
        return iter(sorted(self._functions))

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)


_BUILTINS: Dict[str, AggregationFunction] = {
    "sum": sum_aggregation,
    "product": product_aggregation,
    "max": max_aggregation,
    "min": min_aggregation,
    "maxabs": maxabs_aggregation,
    "mean": mean_aggregation,
    "median": median_aggregation,
}

#: Stable integer codes for the 64-bit hardware gene word (Fig. 6 reserves
#: an "Aggregation" field).  Order is frozen for serialisation stability.
AGGREGATION_CODES: Dict[str, int] = {name: i for i, name in enumerate(sorted(_BUILTINS))}
AGGREGATION_NAMES: Dict[int, str] = {i: name for name, i in AGGREGATION_CODES.items()}
