"""The NEAT outer loop (Fig. 3(b)).

Generate initial population -> evaluate fitness -> check completion ->
reproduce -> repeat.  The population object is deliberately agnostic to
*how* fitness is computed: callers hand in a fitness function (software
network inference, or the full hardware-in-the-loop path through
:mod:`repro.core.runner`), matching the paper's framing where only the
fitness function changes between workloads (Section III-B).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from .. import obs
from .config import NEATConfig
from .genome import Genome
from .innovation import InnovationTracker
from .reproduction import Reproduction, ReproductionPlan
from .species import SpeciesSet
from .statistics import GenerationStats, StatisticsReporter

FitnessFunction = Callable[[List[Genome], NEATConfig], None]


class Population:
    """Runs NEAT for a given config and fitness function."""

    def __init__(self, config: NEATConfig, seed: Optional[int] = None) -> None:
        self.config = config
        self.rng = random.Random(seed)
        self.innovations = InnovationTracker(next_node_id=config.genome.num_outputs)
        self.reproduction = Reproduction(config, self.innovations)
        self.species_set = SpeciesSet(config)
        self.statistics = StatisticsReporter()
        self.generation = 0
        self.population: Dict[int, Genome] = self.reproduction.create_initial_population(
            self.rng
        )
        self.species_set.speciate(self.population, self.generation)
        self.best_genome: Optional[Genome] = None
        self.last_plan: Optional[ReproductionPlan] = None

    # ------------------------------------------------------------------

    def fitness_summary(self) -> float:
        """Current population's fitness under ``config.fitness_criterion``.

        This is the quantity the stop criterion compares against the
        fitness threshold; exposing it lets external runners (the
        :mod:`repro.api` backends) reproduce :meth:`run` exactly.
        """
        fitnesses = [
            g.fitness for g in self.population.values() if g.fitness is not None
        ]
        if not fitnesses:
            return float("-inf")
        criterion = self.config.fitness_criterion
        if criterion == "max":
            return max(fitnesses)
        if criterion == "min":
            return min(fitnesses)
        return sum(fitnesses) / len(fitnesses)

    # Backwards-compatible alias (pre-1.1 private name).
    _fitness_summary = fitness_summary

    def run_generation(self, fitness_function: FitnessFunction) -> GenerationStats:
        """Evaluate the current population and breed the next one."""
        genomes = list(self.population.values())
        with obs.span(
            "evaluate", generation=self.generation, genomes=len(genomes)
        ):
            fitness_function(genomes, self.config)
        missing = [g.key for g in genomes if g.fitness is None]
        if missing:
            raise RuntimeError(
                f"fitness function left genomes unevaluated: {missing[:5]}"
            )

        best = max(self.population.values(), key=lambda g: g.fitness)
        if (
            self.best_genome is None
            or self.best_genome.fitness is None
            or best.fitness > self.best_genome.fitness
        ):
            self.best_genome = best.copy()

        self.species_set.adjust_fitnesses(self.generation)
        stats = self.statistics.record(
            self.generation, self.population, len(self.species_set), self.last_plan
        )

        with obs.span(
            "reproduce",
            generation=self.generation,
            species=len(self.species_set),
        ):
            self.innovations.new_generation()
            new_population, plan = self.reproduction.reproduce(
                self.species_set, self.generation, self.rng
            )
            self.last_plan = plan
            self.population = new_population
            self.generation += 1
            self.species_set.speciate(self.population, self.generation)
        return stats

    def run(
        self,
        fitness_function: FitnessFunction,
        max_generations: int = 100,
        fitness_threshold: Optional[float] = None,
    ) -> Genome:
        """Run until the fitness threshold is met or the budget expires.

        Returns the best genome observed (the paper's stop criterion:
        "The system stops when the CPU detects that the target fitness for
        that application has been achieved", Section IV-B).
        """
        threshold = (
            fitness_threshold
            if fitness_threshold is not None
            else self.config.fitness_threshold
        )
        for _ in range(max_generations):
            self.run_generation(fitness_function)
            if threshold is not None and self.fitness_summary() >= threshold:
                break
        if self.best_genome is None:
            raise RuntimeError("no generations were evaluated")
        return self.best_genome

    @property
    def converged(self) -> bool:
        threshold = self.config.fitness_threshold
        if threshold is None or self.best_genome is None:
            return False
        return (self.best_genome.fitness or float("-inf")) >= threshold

    # ------------------------------------------------------------------
    # checkpoint / resume

    def to_state(self) -> dict:
        """Snapshot the full evolution state at a generation boundary.

        The returned dict is JSON-serialisable and captures everything a
        bit-identical resume needs: genomes, speciation, innovation and
        genome-key counters, the RNG state and the last reproduction
        plan.  See :func:`repro.neat.serialize.population_to_state`.
        """
        from .serialize import population_to_state

        return population_to_state(self)

    @classmethod
    def from_state(cls, state: dict, config: NEATConfig) -> "Population":
        """Rebuild a population from a :meth:`to_state` snapshot.

        ``config`` must match the one recorded in the snapshot;
        :class:`repro.neat.serialize.DeserializationError` is raised for
        a foreign config or a malformed/unsupported payload.
        """
        from .serialize import population_from_state

        return population_from_state(state, config)
