"""Species stagnation tracking.

Species that fail to improve their best fitness for ``max_stagnation``
generations are marked stagnant and removed from reproduction, except the
``species_elitism`` best species which are always protected — without this
guard a single hard environment can drive the whole population extinct.
"""

from __future__ import annotations

from typing import List, Tuple

from .config import NEATConfig
from .species import Species, SpeciesSet


class Stagnation:
    def __init__(self, config: NEATConfig) -> None:
        self.config = config

    def update(
        self, species_set: SpeciesSet, generation: int
    ) -> List[Tuple[int, Species, bool]]:
        """Return (species_key, species, is_stagnant) for every species."""
        species_cfg = self.config.species
        scored: List[Tuple[int, Species]] = []
        for key, species in species_set.species.items():
            if species.fitness_history:
                previous_best = max(species.fitness_history[:-1], default=float("-inf"))
                current = species.fitness_history[-1]
                if current > previous_best:
                    species.last_improved = generation
            scored.append((key, species))

        # Rank by current fitness so elitism protects the best species.
        scored.sort(key=lambda item: item[1].fitness or float("-inf"), reverse=True)
        results: List[Tuple[int, Species, bool]] = []
        for rank, (key, species) in enumerate(scored):
            stagnant_time = generation - species.last_improved
            is_stagnant = stagnant_time >= species_cfg.max_stagnation
            if rank < species_cfg.species_elitism:
                is_stagnant = False
            results.append((key, species, is_stagnant))
        return results
