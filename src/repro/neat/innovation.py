"""Node-id (innovation) tracking.

NEAT aligns genes across genomes by id: homologous genes share keys so
crossover can cherry-pick attributes gene-by-gene.  In hardware this is
what lets the Gene Split block stream aligned parent gene pairs to the PEs
(Section IV-C4).  Two policies are supported:

* a population-global :class:`InnovationTracker` that reuses the same new
  node id for the same split ``(source, dest)`` within one generation —
  classic NEAT innovation numbering; and
* the per-genome fallback used by the Add Gene engine in hardware, which
  simply assigns "a node ID greater than any other node present in the
  network" (Section IV-C3).
"""

from __future__ import annotations

from typing import Dict, Tuple


class InnovationTracker:
    """Assigns new node ids, deduplicating identical splits per generation."""

    def __init__(self, next_node_id: int = 0) -> None:
        self._next_node_id = next_node_id
        self._split_cache: Dict[Tuple[int, int], int] = {}

    @property
    def next_node_id(self) -> int:
        return self._next_node_id

    def reserve_through(self, node_id: int) -> None:
        """Ensure future ids are strictly greater than ``node_id``."""
        if node_id >= self._next_node_id:
            self._next_node_id = node_id + 1

    def get_split_node_id(self, source: int, dest: int) -> int:
        """Node id for splitting connection (source, dest).

        The same split requested twice in one generation returns the same
        id, so independently-evolved identical structures stay homologous.
        """
        key = (source, dest)
        if key not in self._split_cache:
            self._split_cache[key] = self._next_node_id
            self._next_node_id += 1
        return self._split_cache[key]

    def fresh_node_id(self) -> int:
        """An unconditionally new node id (no split deduplication)."""
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def new_generation(self) -> None:
        """Clear the split cache; ids keep increasing monotonically."""
        self._split_cache.clear()
