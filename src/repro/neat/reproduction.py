"""Selection and reproduction (Section IV-B, steps 7-10 in software).

Produces the next generation from the speciated, fitness-scored current
one: per-species offspring quotas proportional to adjusted fitness, elites
copied verbatim, parents drawn from the top ``survival_threshold``
fraction of each species, children created by crossover + mutation.

Every child is recorded as a :class:`ReproductionEvent`.  The resulting
:class:`ReproductionPlan` is simultaneously (a) the Fig. 4(c)/5(a)
characterisation source (parent reuse, op counts) and (b) the trace the
hardware simulators replay — the paper's methodology does the same thing:
"modify the code ... to generate a trace of reproduction operations"
(Section VI-A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import NEATConfig
from .genome import Genome, MutationCounts
from .innovation import InnovationTracker
from .species import SpeciesSet
from .stagnation import Stagnation


@dataclass
class ReproductionEvent:
    """One child: which parents produced it and at what op cost."""

    child_key: int
    parent1_key: int
    parent2_key: int
    species_key: int
    counts: MutationCounts = field(default_factory=MutationCounts)

    @property
    def is_clone(self) -> bool:
        return self.parent1_key == self.parent2_key


@dataclass
class ReproductionPlan:
    """The full record of one generation's reproduction."""

    generation: int
    events: List[ReproductionEvent] = field(default_factory=list)
    elite_keys: List[Tuple[int, int]] = field(default_factory=list)  # (old, new)

    @property
    def total_counts(self) -> MutationCounts:
        total = MutationCounts()
        for event in self.events:
            total.merge(event.counts)
        return total

    def parent_usage(self) -> Dict[int, int]:
        """How many children each parent genome contributed to."""
        usage: Dict[int, int] = {}
        for event in self.events:
            usage[event.parent1_key] = usage.get(event.parent1_key, 0) + 1
            if event.parent2_key != event.parent1_key:
                usage[event.parent2_key] = usage.get(event.parent2_key, 0) + 1
        return usage

    def fittest_parent_reuse(self, fitnesses: Dict[int, float]) -> int:
        """Reuse count of the fittest genome that acted as a parent.

        This is the Fig. 4(c) metric: "the fittest parent in every
        generation was reused close to 20 times, and for some applications
        ... up to 80".
        """
        usage = self.parent_usage()
        if not usage:
            return 0
        fittest = max(usage, key=lambda key: (fitnesses.get(key, float("-inf")), -key))
        return usage[fittest]


class CompleteExtinctionError(RuntimeError):
    """All species died and ``reset_on_extinction`` is disabled."""


class Reproduction:
    """Creates generation n+1 genomes from generation n."""

    def __init__(self, config: NEATConfig, innovations: InnovationTracker) -> None:
        self.config = config
        self.innovations = innovations
        self.stagnation = Stagnation(config)
        self._next_genome_key = 0

    def next_genome_key(self) -> int:
        key = self._next_genome_key
        self._next_genome_key += 1
        return key

    def create_initial_population(self, rng: random.Random) -> Dict[int, Genome]:
        population: Dict[int, Genome] = {}
        for _ in range(self.config.pop_size):
            genome = Genome(self.next_genome_key())
            genome.configure_new(self.config.genome, rng)
            population[genome.key] = genome
        return population

    # ------------------------------------------------------------------

    @staticmethod
    def compute_spawn_counts(
        adjusted_fitnesses: List[float], sizes: List[int], pop_size: int, min_size: int
    ) -> List[int]:
        """Apportion the next generation's slots across species.

        Proportional to adjusted fitness with a floor of ``min_size``,
        normalised to exactly ``pop_size`` total.
        """
        total_adjusted = sum(adjusted_fitnesses)
        spawns: List[float] = []
        for adjusted, size in zip(adjusted_fitnesses, sizes):
            if total_adjusted > 0:
                share = adjusted / total_adjusted * pop_size
            else:
                share = pop_size / len(sizes)
            # Damped update (half-way between old size and target share)
            # avoids oscillation, as in neat-python.
            spawns.append(max(min_size, size + round((share - size) * 0.5)))
        # Normalise to the exact population size.
        total = sum(spawns)
        counts = [max(min_size, int(round(s * pop_size / total))) for s in spawns]
        # Fix rounding drift by adjusting the largest species.
        drift = pop_size - sum(counts)
        counts[counts.index(max(counts))] += drift
        return [max(min_size, c) for c in counts]

    def _select(
        self, species_set: SpeciesSet, generation: int, rng: random.Random
    ) -> Optional[List[Tuple[object, List[Genome], List[Genome], int]]]:
        """Step 7, the selector: per-species (elites, parent pool, quota).

        Returns ``None`` on complete extinction (with reset handled by the
        caller).  Shared by the software path (:meth:`reproduce`) and the
        hardware path (:meth:`plan_generation`) so both select identically.
        """
        repro_cfg = self.config.reproduction
        remaining = []
        for key, species, is_stagnant in self.stagnation.update(species_set, generation):
            if not is_stagnant:
                remaining.append(species)
        if not remaining:
            return None

        adjusted = [s.adjusted_fitness or 0.0 for s in remaining]
        min_adjusted = min(adjusted)
        if min_adjusted < 0:
            # Shift so proportional apportioning works with negative fitness
            # environments (e.g. Acrobot rewards are always negative).
            adjusted = [a - min_adjusted + 1e-6 for a in adjusted]
        sizes = [len(s) for s in remaining]
        spawn_counts = self.compute_spawn_counts(
            adjusted, sizes, self.config.pop_size, repro_cfg.min_species_size
        )

        allotments = []
        for species, spawn in zip(remaining, spawn_counts):
            members = sorted(
                species.members.values(),
                key=lambda g: g.fitness if g.fitness is not None else float("-inf"),
                reverse=True,
            )
            elites = members[: min(repro_cfg.elitism, spawn)]
            children = spawn - len(elites)
            # Selection: only the top survival_threshold fraction breed.
            cutoff = max(2, int(round(len(members) * repro_cfg.survival_threshold)))
            parents = members[: min(cutoff, len(members))]
            allotments.append((species, elites, parents, children))
        return allotments

    def reproduce(
        self,
        species_set: SpeciesSet,
        generation: int,
        rng: random.Random,
    ) -> Tuple[Dict[int, Genome], ReproductionPlan]:
        """Produce the next population plus its reproduction trace."""
        plan = ReproductionPlan(generation=generation)
        allotments = self._select(species_set, generation, rng)
        if allotments is None:
            if self.config.reset_on_extinction:
                return self.create_initial_population(rng), plan
            raise CompleteExtinctionError("all species are stagnant")

        new_population: Dict[int, Genome] = {}
        for species, elites, parents, children in allotments:
            # Elites survive unchanged (and are *not* EvE work: no ops).
            for elite in elites:
                clone = elite.copy(self.next_genome_key())
                new_population[clone.key] = clone
                plan.elite_keys.append((elite.key, clone.key))
            for _ in range(children):
                parent1 = rng.choice(parents)
                parent2 = rng.choice(parents)
                child_key = self.next_genome_key()
                event = ReproductionEvent(
                    child_key=child_key,
                    parent1_key=parent1.key,
                    parent2_key=parent2.key,
                    species_key=species.key,
                )
                child = Genome.crossover(
                    child_key, parent1, parent2, self.config.genome, rng, event.counts
                )
                child.mutate(self.config.genome, rng, self.innovations, event.counts)
                new_population[child_key] = child
                plan.events.append(event)
        return new_population, plan

    def plan_generation(
        self,
        species_set: SpeciesSet,
        generation: int,
        rng: random.Random,
    ) -> Optional[ReproductionPlan]:
        """Select parents without materialising children (hardware path).

        The returned plan carries parent/child key assignments only; the
        EvE model executes the actual crossover/mutation on packed gene
        words (walkthrough steps 8-10).  Returns ``None`` on extinction.
        """
        plan = ReproductionPlan(generation=generation)
        allotments = self._select(species_set, generation, rng)
        if allotments is None:
            return None
        for species, elites, parents, children in allotments:
            for elite in elites:
                plan.elite_keys.append((elite.key, self.next_genome_key()))
            for _ in range(children):
                parent1 = rng.choice(parents)
                parent2 = rng.choice(parents)
                plan.events.append(
                    ReproductionEvent(
                        child_key=self.next_genome_key(),
                        parent1_key=parent1.key,
                        parent2_key=parent2.key,
                        species_key=species.key,
                    )
                )
        return plan
