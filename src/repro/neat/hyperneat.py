"""HyperNEAT-style indirect genome encoding (CPPNs).

Section III-D1: "There have been other NE algorithms such as HyperNEAT
[16] which provide a mechanism to encode the genomes more efficiently,
which can be leveraged if need be."  This module provides that mechanism:

* a **CPPN** (Compositional Pattern Producing Network, Stanley 2007) is
  just a NEAT genome whose nodes may use the full mixed activation set —
  the existing :class:`repro.neat.Genome` machinery evolves it unchanged;
* a **substrate** lays out neurons at geometric coordinates; the CPPN is
  queried at (x1, y1, x2, y2) to paint every substrate connection's
  weight, so a few hundred CPPN genes encode arbitrarily dense phenotype
  networks — the compression the paper alludes to.

The decoded substrate network is a plain :class:`Genome`, so it runs on
ADAM / the software network unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .config import GenomeConfig, NEATConfig
from .genes import ConnectionGene, NodeGene
from .genome import Genome
from .network import FeedForwardNetwork

#: CPPNs get the expressive activation set of the HyperNEAT literature.
CPPN_ACTIVATIONS = ["sigmoid", "tanh", "sin", "gauss", "abs", "identity"]


def cppn_config(pop_size: int = 150) -> NEATConfig:
    """NEAT config for evolving CPPNs: 4 inputs (x1,y1,x2,y2), 1 output."""
    return NEATConfig.for_env(
        4,
        1,
        pop_size=pop_size,
        activation_options=list(CPPN_ACTIVATIONS),
        activation_mutate_rate=0.25,
        activation_default="tanh",
        initial_weight=None,  # random weights: CPPNs need signal at gen 0
    )


@dataclass(frozen=True)
class SubstrateNode:
    """A neuron at a geometric position."""

    node_id: int
    x: float
    y: float


@dataclass
class Substrate:
    """Input/hidden/output neuron layout on the unit plane.

    ``grid`` builds the standard layered sheet: inputs at y=-1, one
    optional hidden row at y=0, outputs at y=+1, x spread in [-1, 1].
    """

    inputs: List[SubstrateNode]
    hidden: List[SubstrateNode]
    outputs: List[SubstrateNode]

    @staticmethod
    def _spread(n: int) -> List[float]:
        if n == 1:
            return [0.0]
        return [-1.0 + 2.0 * i / (n - 1) for i in range(n)]

    @classmethod
    def grid(
        cls, num_inputs: int, num_outputs: int, num_hidden: int = 0
    ) -> "Substrate":
        inputs = [
            SubstrateNode(-(i + 1), x, -1.0)
            for i, x in enumerate(cls._spread(num_inputs))
        ]
        outputs = [
            SubstrateNode(i, x, 1.0) for i, x in enumerate(cls._spread(num_outputs))
        ]
        hidden = [
            SubstrateNode(num_outputs + i, x, 0.0)
            for i, x in enumerate(cls._spread(num_hidden))
        ]
        return cls(inputs=inputs, hidden=hidden, outputs=outputs)

    @property
    def phenotype_config(self) -> GenomeConfig:
        return GenomeConfig(
            num_inputs=len(self.inputs), num_outputs=len(self.outputs)
        )

    def connection_queries(self) -> List[Tuple[SubstrateNode, SubstrateNode]]:
        """Feed-forward layer-to-layer connection candidates."""
        pairs: List[Tuple[SubstrateNode, SubstrateNode]] = []
        if self.hidden:
            for a in self.inputs:
                for b in self.hidden:
                    pairs.append((a, b))
            for a in self.hidden:
                for b in self.outputs:
                    pairs.append((a, b))
        for a in self.inputs:
            for b in self.outputs:
                pairs.append((a, b))
        return pairs


class HyperNEATDecoder:
    """Decodes a CPPN genome into a substrate phenotype genome."""

    def __init__(
        self,
        substrate: Substrate,
        cppn_genome_config: GenomeConfig,
        weight_range: float = 4.0,
        expression_threshold: float = 0.2,
    ) -> None:
        if cppn_genome_config.num_inputs != 4 or cppn_genome_config.num_outputs != 1:
            raise ValueError("CPPN must map (x1, y1, x2, y2) -> weight")
        self.substrate = substrate
        self.cppn_genome_config = cppn_genome_config
        self.weight_range = weight_range
        self.expression_threshold = expression_threshold

    def decode(self, cppn_genome: Genome, phenotype_key: int = 0) -> Genome:
        """Query the CPPN over every substrate pair; build the phenotype.

        Following HyperNEAT: connections whose CPPN magnitude falls below
        the expression threshold are not expressed; the rest are scaled
        into [-weight_range, +weight_range].
        """
        cppn = FeedForwardNetwork.create(cppn_genome, self.cppn_genome_config)
        phenotype = Genome(phenotype_key)
        config = self.substrate.phenotype_config
        for node in self.substrate.outputs + self.substrate.hidden:
            phenotype.nodes[node.node_id] = NodeGene(
                node.node_id, bias=0.0, response=1.0,
                activation="tanh", aggregation="sum",
            )
        for src, dst in self.substrate.connection_queries():
            value = cppn.activate([src.x, src.y, dst.x, dst.y])[0]
            if abs(value) < self.expression_threshold:
                continue
            # rescale the post-threshold magnitude onto the weight range
            sign = 1.0 if value >= 0 else -1.0
            magnitude = (abs(value) - self.expression_threshold) / max(
                1e-9, 1.0 - self.expression_threshold
            )
            weight = sign * min(1.0, magnitude) * self.weight_range
            key = (src.node_id, dst.node_id)
            phenotype.connections[key] = ConnectionGene(key, weight=weight, enabled=True)
        return phenotype

    def compression_ratio(self, cppn_genome: Genome) -> float:
        """Phenotype genes per CPPN gene — the encoding-efficiency win."""
        phenotype = self.decode(cppn_genome)
        return phenotype.num_genes / max(1, cppn_genome.num_genes)


def evolve_hyperneat(
    substrate: Substrate,
    fitness_function,
    generations: int = 20,
    pop_size: int = 50,
    seed: int = 0,
    fitness_threshold: Optional[float] = None,
):
    """Evolve CPPNs against a phenotype-level fitness function.

    ``fitness_function(phenotype_genome, phenotype_config) -> float`` is
    evaluated on the decoded substrate network of each CPPN.

    Returns ``(best_cppn, population, decoder)``.
    """
    from .population import Population

    config = cppn_config(pop_size=pop_size)
    config.fitness_threshold = fitness_threshold
    decoder = HyperNEATDecoder(substrate, config.genome)
    population = Population(config, seed=seed)
    phenotype_config = substrate.phenotype_config

    def evaluate(genomes, _cfg):
        for genome in genomes:
            phenotype = decoder.decode(genome)
            genome.fitness = fitness_function(phenotype, phenotype_config)

    best = population.run(
        evaluate, max_generations=generations, fitness_threshold=fitness_threshold
    )
    return best, population, decoder
