"""Node and connection genes.

"The basic building block in NEAT is a gene, which can represent either a
NN node (i.e., neuron), or a connection (i.e., synapse)" (Section II-D).
Node genes carry four attributes {Bias, Response, Activation, Aggregation}
and connection genes carry {Weight, Enabled} plus their (source, dest) key
— exactly the fields the paper's 64-bit hardware gene word packs (Fig. 6).

The crossover/mutation entry points on these classes are the software
reference the EvE PE pipeline model (:mod:`repro.hw.pe`) is validated
against.
"""

from __future__ import annotations

import random
from typing import List, Tuple, Union

from .config import GenomeConfig

GeneKey = Union[int, Tuple[int, int]]


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


class BaseGene:
    """Shared crossover/copy machinery for node and connection genes.

    Subclasses declare ``_float_attrs`` (perturbable scalar attributes) and
    ``_other_attrs`` (categorical / boolean attributes).
    """

    _float_attrs: Tuple[str, ...] = ()
    _other_attrs: Tuple[str, ...] = ()

    key: GeneKey

    def copy(self):
        raise NotImplementedError

    def crossover(self, other: "BaseGene", rng: random.Random, bias: float = 0.5):
        """Create a child gene by cherry-picking attributes from two parents.

        Implements the paper's crossover op: "Create a new gene by picking
        up attributes from parent genes based on relative fitness of
        parents" (Fig. 3d).  ``bias`` is the programmable preference for
        ``self`` (the fitter parent), default 0.5 as in the EvE crossover
        engine (Fig. 7).
        """
        if self.key != other.key:
            raise ValueError(
                f"crossover requires homologous genes; got keys {self.key} and {other.key}"
            )
        child = self.copy()
        for attr in self._float_attrs + self._other_attrs:
            if rng.random() >= bias:
                setattr(child, attr, getattr(other, attr))
        return child

    def distance(self, other: "BaseGene", config: GenomeConfig) -> float:
        """Attribute distance used in the compatibility metric."""
        d = 0.0
        for attr in self._float_attrs:
            d += abs(getattr(self, attr) - getattr(other, attr))
        for attr in self._other_attrs:
            if getattr(self, attr) != getattr(other, attr):
                d += 1.0
        return d * config.compatibility_weight_coefficient

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        attrs = ("key",) + self._float_attrs + self._other_attrs
        return all(getattr(self, a) == getattr(other, a) for a in attrs)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.key))


class NodeGene(BaseGene):
    """A neuron: key is a single integer node id.

    Input nodes (negative ids) are implicit in this implementation — as in
    neat-python, only hidden and output nodes own ``NodeGene`` objects.
    """

    _float_attrs = ("bias", "response")
    _other_attrs = ("activation", "aggregation")

    def __init__(
        self,
        key: int,
        bias: float = 0.0,
        response: float = 1.0,
        activation: str = "tanh",
        aggregation: str = "sum",
    ) -> None:
        if isinstance(key, tuple):
            raise TypeError("NodeGene key must be an int node id")
        self.key = key
        self.bias = bias
        self.response = response
        self.activation = activation
        self.aggregation = aggregation

    @classmethod
    def random_init(cls, key: int, config: GenomeConfig, rng: random.Random) -> "NodeGene":
        bias = _clamp(
            rng.gauss(config.bias_init_mean, config.bias_init_stdev),
            config.bias_min_value,
            config.bias_max_value,
        )
        response = _clamp(
            rng.gauss(config.response_init_mean, config.response_init_stdev),
            config.response_min_value,
            config.response_max_value,
        )
        return cls(
            key,
            bias=bias,
            response=response,
            activation=config.activation_default,
            aggregation=config.aggregation_default,
        )

    def copy(self) -> "NodeGene":
        return NodeGene(self.key, self.bias, self.response, self.activation, self.aggregation)

    def mutate(self, config: GenomeConfig, rng: random.Random) -> int:
        """Perturb attributes in place; returns the number of perturbations.

        This is the "Mutation: Perturb" op of Fig. 3(d): "Change the
        attributes of the child gene by perturbing the values by small
        amounts."
        """
        count = 0
        for attr in ("bias", "response"):
            rate = getattr(config, f"{attr}_mutate_rate")
            replace = getattr(config, f"{attr}_replace_rate")
            r = rng.random()
            if r < rate:
                power = getattr(config, f"{attr}_mutate_power")
                value = getattr(self, attr) + rng.gauss(0.0, power)
                setattr(
                    self,
                    attr,
                    _clamp(
                        value,
                        getattr(config, f"{attr}_min_value"),
                        getattr(config, f"{attr}_max_value"),
                    ),
                )
                count += 1
            elif r < rate + replace:
                setattr(
                    self,
                    attr,
                    _clamp(
                        rng.gauss(
                            getattr(config, f"{attr}_init_mean"),
                            getattr(config, f"{attr}_init_stdev"),
                        ),
                        getattr(config, f"{attr}_min_value"),
                        getattr(config, f"{attr}_max_value"),
                    ),
                )
                count += 1
        if config.activation_options and rng.random() < config.activation_mutate_rate:
            self.activation = rng.choice(config.activation_options)
            count += 1
        if config.aggregation_options and rng.random() < config.aggregation_mutate_rate:
            self.aggregation = rng.choice(config.aggregation_options)
            count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"NodeGene(key={self.key}, bias={self.bias:.3f}, response={self.response:.3f}, "
            f"activation={self.activation!r}, aggregation={self.aggregation!r})"
        )


class ConnectionGene(BaseGene):
    """A synapse: key is the (source_id, dest_id) node pair (Fig. 6)."""

    _float_attrs = ("weight",)
    _other_attrs = ("enabled",)

    def __init__(self, key: Tuple[int, int], weight: float = 0.0, enabled: bool = True) -> None:
        if not (isinstance(key, tuple) and len(key) == 2):
            raise TypeError("ConnectionGene key must be a (source, dest) tuple")
        self.key = key
        self.weight = weight
        self.enabled = enabled

    @property
    def source(self) -> int:
        return self.key[0]

    @property
    def dest(self) -> int:
        return self.key[1]

    @classmethod
    def random_init(
        cls, key: Tuple[int, int], config: GenomeConfig, rng: random.Random
    ) -> "ConnectionGene":
        weight = _clamp(
            rng.gauss(config.weight_init_mean, config.weight_init_stdev),
            config.weight_min_value,
            config.weight_max_value,
        )
        return cls(key, weight=weight, enabled=True)

    def copy(self) -> "ConnectionGene":
        return ConnectionGene(self.key, self.weight, self.enabled)

    def mutate(self, config: GenomeConfig, rng: random.Random) -> int:
        """Perturb the weight / toggle enabled in place; returns op count."""
        count = 0
        r = rng.random()
        if r < config.weight_mutate_rate:
            self.weight = _clamp(
                self.weight + rng.gauss(0.0, config.weight_mutate_power),
                config.weight_min_value,
                config.weight_max_value,
            )
            count += 1
        elif r < config.weight_mutate_rate + config.weight_replace_rate:
            self.weight = _clamp(
                rng.gauss(config.weight_init_mean, config.weight_init_stdev),
                config.weight_min_value,
                config.weight_max_value,
            )
            count += 1
        if rng.random() < config.enabled_mutate_rate:
            self.enabled = not self.enabled
            count += 1
        return count

    def __repr__(self) -> str:
        return f"ConnectionGene(key={self.key}, weight={self.weight:.3f}, enabled={self.enabled})"


def gene_sort_key(gene: BaseGene) -> Tuple:
    """Canonical in-memory ordering (Section IV-C5 "Genome organization"):

    genes are stored in two logical clusters (nodes first, then
    connections), each sorted ascending by id.
    """
    if isinstance(gene, NodeGene):
        return (0, gene.key)
    return (1, gene.key)


def sorted_genes(genes: List[BaseGene]) -> List[BaseGene]:
    return sorted(genes, key=gene_sort_key)
