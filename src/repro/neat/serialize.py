"""Genome and run checkpointing (JSON).

Lets a downstream user persist evolved champions, reload them for
inference or hardware encoding, and checkpoint/resume long runs — the
"continuous learning" deployments the paper targets need exactly this
(an agent's learned state must survive power cycles).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .config import GenomeConfig, NEATConfig
from .genes import ConnectionGene, NodeGene
from .genome import Genome

FORMAT_VERSION = 1


class DeserializationError(ValueError):
    """Raised when a checkpoint file is malformed or incompatible."""


def genome_to_dict(genome: Genome) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "key": genome.key,
        "fitness": genome.fitness,
        "nodes": [
            {
                "key": node.key,
                "bias": node.bias,
                "response": node.response,
                "activation": node.activation,
                "aggregation": node.aggregation,
            }
            for node in genome.nodes.values()
        ],
        "connections": [
            {
                "source": conn.source,
                "dest": conn.dest,
                "weight": conn.weight,
                "enabled": conn.enabled,
            }
            for conn in genome.connections.values()
        ],
    }


def genome_from_dict(data: Dict[str, Any]) -> Genome:
    try:
        version = data["format"]
        if version != FORMAT_VERSION:
            raise DeserializationError(f"unsupported format version {version}")
        genome = Genome(int(data["key"]))
        genome.fitness = data.get("fitness")
        for node in data["nodes"]:
            genome.nodes[int(node["key"])] = NodeGene(
                int(node["key"]),
                bias=float(node["bias"]),
                response=float(node["response"]),
                activation=str(node["activation"]),
                aggregation=str(node["aggregation"]),
            )
        for conn in data["connections"]:
            key = (int(conn["source"]), int(conn["dest"]))
            genome.connections[key] = ConnectionGene(
                key, weight=float(conn["weight"]), enabled=bool(conn["enabled"])
            )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, DeserializationError):
            raise
        raise DeserializationError(f"malformed genome payload: {exc}") from exc
    return genome


def save_genome(genome: Genome, path: Union[str, Path],
                config: Optional[NEATConfig] = None) -> None:
    """Write a genome (optionally with its NEAT config) to a JSON file."""
    payload: Dict[str, Any] = {"genome": genome_to_dict(genome)}
    if config is not None:
        payload["config"] = config.to_dict()
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_genome(path: Union[str, Path]) -> Genome:
    payload = _read(path)
    if "genome" not in payload:
        raise DeserializationError("file does not contain a genome")
    return genome_from_dict(payload["genome"])


def load_genome_with_config(path: Union[str, Path]):
    payload = _read(path)
    if "genome" not in payload or "config" not in payload:
        raise DeserializationError("file lacks genome and/or config")
    return genome_from_dict(payload["genome"]), NEATConfig.from_dict(payload["config"])


def save_population(
    genomes: List[Genome], path: Union[str, Path], generation: int = 0,
    config: Optional[NEATConfig] = None,
) -> None:
    """Checkpoint a whole generation."""
    payload: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "generation": generation,
        "genomes": [genome_to_dict(g) for g in genomes],
    }
    if config is not None:
        payload["config"] = config.to_dict()
    Path(path).write_text(json.dumps(payload, sort_keys=True))


def load_population(path: Union[str, Path]):
    """Returns (genomes, generation)."""
    payload = _read(path)
    if "genomes" not in payload:
        raise DeserializationError("file does not contain a population")
    genomes = [genome_from_dict(g) for g in payload["genomes"]]
    return genomes, int(payload.get("generation", 0))


def _read(path: Union[str, Path]) -> Dict[str, Any]:
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise DeserializationError(f"not valid JSON: {exc}") from exc
