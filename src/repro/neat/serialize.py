"""Genome and run checkpointing (JSON).

Lets a downstream user persist evolved champions, reload them for
inference or hardware encoding, and checkpoint/resume long runs — the
"continuous learning" deployments the paper targets need exactly this
(an agent's learned state must survive power cycles).

Two granularities ship here:

* **Genome/population payloads** (:func:`save_genome`,
  :func:`save_population`) — the champion/export format, enough to
  reload networks for inference or hardware encoding.
* **Full evolution state** (:func:`population_to_state`,
  :func:`population_from_state`) — everything
  :class:`repro.neat.Population` needs to continue a run bit-identically
  from a generation boundary: every genome, the speciation partition and
  its fitness histories, the innovation/genome-key counters, the Mersenne
  Twister state of the population RNG and the last reproduction plan.
  :mod:`repro.runs` builds its on-disk checkpoint files on top of this.

Both formats are versioned (``format`` field) and raise
:class:`DeserializationError` for unknown versions, truncated files and
— for full states — a config that differs from the one the checkpoint
was recorded under (resuming a run under a *different* NEAT config would
silently diverge, so it is rejected instead).
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from .config import GenomeConfig, NEATConfig
from .genes import ConnectionGene, NodeGene
from .genome import Genome, MutationCounts
from .reproduction import ReproductionEvent, ReproductionPlan
from .species import Species

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .population import Population

FORMAT_VERSION = 1

#: Version tag of the full-population evolution-state format (the
#: :mod:`repro.runs` checkpoint payload).
STATE_FORMAT_VERSION = 1


class DeserializationError(ValueError):
    """Raised when a checkpoint file is malformed or incompatible."""


def genome_to_dict(genome: Genome) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "key": genome.key,
        "fitness": genome.fitness,
        "nodes": [
            {
                "key": node.key,
                "bias": node.bias,
                "response": node.response,
                "activation": node.activation,
                "aggregation": node.aggregation,
            }
            for node in genome.nodes.values()
        ],
        "connections": [
            {
                "source": conn.source,
                "dest": conn.dest,
                "weight": conn.weight,
                "enabled": conn.enabled,
            }
            for conn in genome.connections.values()
        ],
    }


def genome_from_dict(data: Dict[str, Any]) -> Genome:
    try:
        version = data["format"]
        if version != FORMAT_VERSION:
            raise DeserializationError(f"unsupported format version {version}")
        genome = Genome(int(data["key"]))
        genome.fitness = data.get("fitness")
        for node in data["nodes"]:
            genome.nodes[int(node["key"])] = NodeGene(
                int(node["key"]),
                bias=float(node["bias"]),
                response=float(node["response"]),
                activation=str(node["activation"]),
                aggregation=str(node["aggregation"]),
            )
        for conn in data["connections"]:
            key = (int(conn["source"]), int(conn["dest"]))
            genome.connections[key] = ConnectionGene(
                key, weight=float(conn["weight"]), enabled=bool(conn["enabled"])
            )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, DeserializationError):
            raise
        raise DeserializationError(f"malformed genome payload: {exc}") from exc
    return genome


def save_genome(genome: Genome, path: Union[str, Path],
                config: Optional[NEATConfig] = None) -> None:
    """Write a genome (optionally with its NEAT config) to a JSON file."""
    payload: Dict[str, Any] = {"genome": genome_to_dict(genome)}
    if config is not None:
        payload["config"] = config.to_dict()
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_genome(path: Union[str, Path]) -> Genome:
    payload = _read(path)
    if "genome" not in payload:
        raise DeserializationError("file does not contain a genome")
    return genome_from_dict(payload["genome"])


def load_genome_with_config(path: Union[str, Path]):
    payload = _read(path)
    if "genome" not in payload or "config" not in payload:
        raise DeserializationError("file lacks genome and/or config")
    return genome_from_dict(payload["genome"]), NEATConfig.from_dict(payload["config"])


def save_population(
    genomes: List[Genome], path: Union[str, Path], generation: int = 0,
    config: Optional[NEATConfig] = None,
) -> None:
    """Checkpoint a whole generation."""
    payload: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "generation": generation,
        "genomes": [genome_to_dict(g) for g in genomes],
    }
    if config is not None:
        payload["config"] = config.to_dict()
    Path(path).write_text(json.dumps(payload, sort_keys=True))


def load_population(path: Union[str, Path]):
    """Returns (genomes, generation)."""
    payload = _read(path)
    if "genomes" not in payload:
        raise DeserializationError("file does not contain a population")
    genomes = [genome_from_dict(g) for g in payload["genomes"]]
    return genomes, int(payload.get("generation", 0))


def _read(path: Union[str, Path]) -> Dict[str, Any]:
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise DeserializationError(f"not valid JSON: {exc}") from exc


# ---------------------------------------------------------------------------
# full evolution state (checkpoint/resume)


def _plan_to_dict(plan: ReproductionPlan) -> Dict[str, Any]:
    return {
        "generation": plan.generation,
        "elite_keys": [list(pair) for pair in plan.elite_keys],
        "events": [
            {
                "child_key": e.child_key,
                "parent1_key": e.parent1_key,
                "parent2_key": e.parent2_key,
                "species_key": e.species_key,
                "counts": {
                    "crossovers": e.counts.crossovers,
                    "perturbations": e.counts.perturbations,
                    "node_additions": e.counts.node_additions,
                    "node_deletions": e.counts.node_deletions,
                    "conn_additions": e.counts.conn_additions,
                    "conn_deletions": e.counts.conn_deletions,
                },
            }
            for e in plan.events
        ],
    }


def _plan_from_dict(data: Dict[str, Any]) -> ReproductionPlan:
    plan = ReproductionPlan(generation=int(data["generation"]))
    plan.elite_keys = [
        (int(old), int(new)) for old, new in data["elite_keys"]
    ]
    for entry in data["events"]:
        plan.events.append(
            ReproductionEvent(
                child_key=int(entry["child_key"]),
                parent1_key=int(entry["parent1_key"]),
                parent2_key=int(entry["parent2_key"]),
                species_key=int(entry["species_key"]),
                counts=MutationCounts(**{
                    k: int(v) for k, v in entry["counts"].items()
                }),
            )
        )
    return plan


def population_to_state(population: "Population") -> Dict[str, Any]:
    """Snapshot a :class:`~repro.neat.population.Population` at a
    generation boundary (i.e. between ``run_generation`` calls).

    The snapshot is pure JSON-serialisable data; order matters and is
    preserved — population and species iteration order participate in
    the RNG draw sequence, so a restored population replays the exact
    byte-identical trajectory the original would have produced.
    """
    rng_version, rng_internal, rng_gauss = population.rng.getstate()
    species_set = population.species_set
    species_entries: List[Dict[str, Any]] = []
    for key, species in species_set.species.items():
        species_entries.append({
            "key": key,
            "created": species.created,
            "last_improved": species.last_improved,
            "fitness": species.fitness,
            "adjusted_fitness": species.adjusted_fitness,
            "fitness_history": list(species.fitness_history),
            "representative": (
                species.representative.key
                if species.representative is not None else None
            ),
            "members": list(species.members.keys()),
        })
    return {
        "format": STATE_FORMAT_VERSION,
        "kind": "population-state",
        "generation": population.generation,
        "config": population.config.to_dict(),
        "rng_state": [rng_version, list(rng_internal), rng_gauss],
        "genomes": [genome_to_dict(g) for g in population.population.values()],
        "innovation_next_node_id": population.innovations.next_node_id,
        "next_genome_key": population.reproduction._next_genome_key,
        "species": species_entries,
        "next_species_key": species_set._next_species_key,
        "best_genome": (
            genome_to_dict(population.best_genome)
            if population.best_genome is not None else None
        ),
        "last_plan": (
            _plan_to_dict(population.last_plan)
            if population.last_plan is not None else None
        ),
    }


def population_from_state(
    state: Dict[str, Any], config: NEATConfig
) -> "Population":
    """Rebuild a live :class:`~repro.neat.population.Population` from a
    :func:`population_to_state` snapshot.

    ``config`` must be *the* config the snapshot was recorded under
    (normally re-derived from the experiment spec); a mismatch raises
    :class:`DeserializationError` because resuming under a foreign
    config would silently diverge from the original run.
    """
    from .innovation import InnovationTracker
    from .population import Population
    from .reproduction import Reproduction
    from .species import SpeciesSet
    from .statistics import StatisticsReporter

    if not isinstance(state, dict):
        raise DeserializationError("population state must be a JSON object")
    version = state.get("format")
    if version != STATE_FORMAT_VERSION:
        raise DeserializationError(
            f"unsupported population-state format version {version!r}"
        )
    stored_config = state.get("config")
    if stored_config != config.to_dict():
        raise DeserializationError(
            "checkpoint was recorded under a different NEAT config; "
            "resuming it here would diverge from the original run"
        )
    try:
        population = Population.__new__(Population)
        population.config = config
        population.rng = random.Random()
        rng_version, rng_internal, rng_gauss = state["rng_state"]
        population.rng.setstate(
            (int(rng_version), tuple(int(v) for v in rng_internal), rng_gauss)
        )
        population.innovations = InnovationTracker(
            next_node_id=int(state["innovation_next_node_id"])
        )
        population.reproduction = Reproduction(config, population.innovations)
        population.reproduction._next_genome_key = int(state["next_genome_key"])
        population.statistics = StatisticsReporter()
        population.generation = int(state["generation"])
        genomes = [genome_from_dict(g) for g in state["genomes"]]
        population.population = {g.key: g for g in genomes}

        species_set = SpeciesSet(config)
        species_set._next_species_key = int(state["next_species_key"])
        for entry in state["species"]:
            species = Species(int(entry["key"]), int(entry["created"]))
            species.last_improved = int(entry["last_improved"])
            species.fitness = entry["fitness"]
            species.adjusted_fitness = entry["adjusted_fitness"]
            species.fitness_history = [float(f) for f in entry["fitness_history"]]
            # Representatives are identical objects to their population
            # members, exactly as SpeciesSet.speciate leaves them.
            species.members = {
                int(k): population.population[int(k)] for k in entry["members"]
            }
            if entry["representative"] is not None:
                species.representative = population.population[
                    int(entry["representative"])
                ]
            species_set.species[species.key] = species
            for member_key in species.members:
                species_set.genome_to_species[member_key] = species.key
        population.species_set = species_set

        best = state.get("best_genome")
        population.best_genome = (
            genome_from_dict(best) if best is not None else None
        )
        plan = state.get("last_plan")
        population.last_plan = (
            _plan_from_dict(plan) if plan is not None else None
        )
    except DeserializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise DeserializationError(
            f"malformed population state: {exc}"
        ) from exc
    return population


def save_population_state(
    population: "Population", path: Union[str, Path]
) -> None:
    """Write a full evolution-state checkpoint to a JSON file."""
    Path(path).write_text(
        json.dumps(population_to_state(population), sort_keys=True)
    )


def load_population_state(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a checkpoint payload (validated lazily by
    :func:`population_from_state`, which also needs the config)."""
    payload = _read(path)
    if "genomes" not in payload or "rng_state" not in payload:
        raise DeserializationError(
            "file does not contain a population-state checkpoint"
        )
    return payload
